//! The readiness reactor: nonblocking sockets polled by `netpoll`,
//! feeding **one** shared session executor for every connection.
//!
//! PR 6's transport spent two threads per connection (a blocking reader
//! and a blocking writer) plus a full executor pool per connection —
//! thread count grew linearly with accepted connections, and the
//! blocking reads hid a family of disconnect bugs: a client that hung
//! up early could deadlock the load loop forever (the local halves of
//! unsettled sessions were never closed, and the event stream never
//! ended), a silent client pinned a server thread for the life of the
//! process, and abrupt disconnects surfaced as `join().expect(...)`
//! panics instead of errors.
//!
//! This module replaces all of that with a single-threaded reactor per
//! endpoint process:
//!
//! * Every connection's stream is switched to nonblocking mode; a
//!   [`netpoll::Poller`] multiplexes read/write readiness across all of
//!   them (plus the listener, server-side).
//! * Incoming bytes run through the incremental
//!   [`RecordDecoder`](crate::codec::RecordDecoder); complete records
//!   are routed into **one** process-wide sharded executor
//!   ([`rsr_core::executor`]) shared by every connection. Worker-shard
//!   count is fixed at startup — total threads are `1 + shards`
//!   regardless of how many connections are live.
//! * Outgoing records queue in a per-connection buffer and drain as the
//!   socket accepts them; the executor's `notify` hook pokes the
//!   poller's waker so frames produced by worker shards interrupt a
//!   blocked `poll(2)` immediately.
//! * Because the reactor is the only thread touching sockets, control
//!   replies (unknown session id, duplicate `OPEN`) are written
//!   straight to the connection's output buffer — the injected-event
//!   detour the writer-thread design needed is gone.
//!
//! Disconnects are first-class here, not accidents: EOF mid-record is
//! diagnosed exactly like the blocking reader would
//! ([`RecordDecoder::truncation`](crate::codec::RecordDecoder::truncation)),
//! EOF with sessions still live closes each local half with
//! [`CLOSED_MID_SESSION`] so every session reports in, and a connection
//! that goes silent past the idle deadline is torn down instead of
//! pinned forever. One connection's death never touches sessions on
//! another connection — they share shards, not fate.

use crate::codec::{
    write_record, NetError, Record, RecordDecoder, SessionSpec, STATUS_OK, STATUS_SESSION_ERROR,
    STATUS_UNKNOWN_SESSION,
};
use crate::executor::PLACEMENT_SEED;
use crate::obs::net_metrics;
use crate::server::{ConnectionReport, SessionFactory, SessionSummary};
use netpoll::{listener_fd, stream_fd, PollFd, Poller, POLLIN, POLLOUT};
use rsr_core::continuous::{BobRound, SharedParty};
use rsr_core::executor::{with_executor_notified, ExecEvent, Notify};
use rsr_core::transcript::{Party, Transcript};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Close reason for sessions the client abandoned via `DONE`; the
/// reactor recognizes it and does not echo a `DONE` back.
pub(crate) const ABANDONED: &str = "abandoned by client";
/// Error recorded for sessions still live when their connection went
/// away (EOF, transport failure, or idle teardown).
pub(crate) const CLOSED_MID_SESSION: &str = "connection closed mid-session";

/// How long a server connection may sit with no wire activity before
/// the reactor tears it down (override with
/// [`ReconServer::with_idle_timeout`](crate::server::ReconServer::with_idle_timeout)).
/// Without a deadline a client that connects and never speaks — or dies
/// without a FIN reaching us — would hold its connection state forever.
pub(crate) const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Read-chunk size for draining a readable socket.
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Nonblocking record-stream state for one connection: incremental
/// decode on the way in, a drain-as-writable buffer on the way out,
/// plus the activity clock and wire-byte accounting both endpoints
/// report.
pub(crate) struct ConnIo {
    stream: TcpStream,
    decoder: RecordDecoder,
    outbuf: Vec<u8>,
    out_pos: usize,
    /// We saw EOF (or gave up on the read half).
    pub read_closed: bool,
    pub last_activity: Instant,
    pub wire_bytes_in: u64,
    pub wire_bytes_out: u64,
}

impl ConnIo {
    pub fn new(stream: TcpStream) -> io::Result<ConnIo> {
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        Ok(ConnIo {
            stream,
            decoder: RecordDecoder::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            read_closed: false,
            last_activity: Instant::now(),
            wire_bytes_in: 0,
            wire_bytes_out: 0,
        })
    }

    pub fn fd(&self) -> i32 {
        stream_fd(&self.stream)
    }

    /// The poll(2) events this connection currently cares about; `0`
    /// when it wants neither (e.g. read half closed, output drained).
    pub fn interest(&self) -> i16 {
        let mut events = 0;
        if !self.read_closed {
            events |= POLLIN;
        }
        if self.wants_write() {
            events |= POLLOUT;
        }
        events
    }

    pub fn wants_write(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    /// Reads until `WouldBlock` or EOF, feeding the decoder. Sets
    /// [`ConnIo::read_closed`] on EOF; complete records are then pulled
    /// with [`ConnIo::next_record`].
    pub fn fill(&mut self, scratch: &mut [u8]) -> Result<(), NetError> {
        while !self.read_closed {
            match self.stream.read(scratch) {
                Ok(0) => self.read_closed = true,
                Ok(n) => {
                    self.last_activity = Instant::now();
                    if rsr_obs::enabled() {
                        net_metrics().bytes_in.add(n as u64);
                    }
                    self.decoder.feed(&scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Next complete record, counting its wire bytes — only whole
    /// records count, exactly like the blocking reader's accounting.
    pub fn next_record(&mut self) -> Result<Option<Record>, NetError> {
        match self.decoder.next_record()? {
            Some((record, n)) => {
                self.wire_bytes_in += n;
                Ok(Some(record))
            }
            None => Ok(None),
        }
    }

    /// The truncation error an EOF at the current decode position
    /// implies, if any.
    pub fn eof_truncation(&self) -> Option<NetError> {
        self.decoder.truncation()
    }

    /// Serializes `record` into the output buffer (counted as written —
    /// the bytes are committed, the socket just hasn't taken them yet).
    pub fn queue(&mut self, record: &Record) -> Result<(), NetError> {
        let n = write_record(&mut self.outbuf, record)?;
        self.wire_bytes_out += n;
        if rsr_obs::enabled() {
            net_metrics()
                .writebuf
                .set_max((self.outbuf.len() - self.out_pos) as i64);
        }
        Ok(())
    }

    /// Writes buffered output until `WouldBlock` or the buffer drains.
    pub fn try_flush(&mut self) -> Result<(), NetError> {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection write side closed",
                    )
                    .into())
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                    if rsr_obs::enabled() {
                        net_metrics().bytes_out.add(n as u64);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        if self.out_pos == self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > READ_CHUNK {
            // Keep the buffer from growing without bound when the peer
            // reads slower than sessions produce.
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Reads and discards until `WouldBlock`; returns `true` when the
    /// stream is finished (EOF or error). Used while draining a
    /// half-closed connection to its end.
    pub fn drain_read(&mut self, scratch: &mut [u8]) -> bool {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return true,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    /// Best-effort shutdown of both halves; the conn is done for.
    pub fn kill(&mut self) {
        self.stream.shutdown(Shutdown::Both).ok();
        self.read_closed = true;
    }

    /// Half-close: no more writes from us, reads keep working.
    pub fn shutdown_write(&self) {
        self.stream.shutdown(Shutdown::Write).ok();
    }
}

/// Server-reactor configuration.
pub(crate) struct ServerOpts {
    pub shards: usize,
    /// Tear down a connection after this much wire silence; `None`
    /// disables the sweep (a test server may legitimately sit idle).
    pub idle_timeout: Option<Duration>,
    /// Stop accepting after this many connections, counting any handed
    /// in directly; `None` = accept until the listener fails.
    pub max_conns: Option<usize>,
}

/// Per-connection server state riding on top of [`ConnIo`].
struct ServerConn {
    io: ConnIo,
    /// Wire session id → executor session id. Ids on the wire are
    /// per-connection names; the shared executor needs process-unique
    /// ids, so the reactor remaps at the boundary. Finished sessions
    /// stay mapped — a re-`OPEN` of a used id is still a duplicate.
    wire_to_exec: HashMap<u64, u64>,
    /// Wire ids in open order, for the report.
    order: Vec<u64>,
    summaries: HashMap<u64, SessionSummary>,
    /// Resident continuous state: wire id → the Bob party that survives
    /// between rounds. Entries live until the client `DONE`s the id (or
    /// the connection ends); each `ROUND` record spins a fresh one-round
    /// executor session over the mapped party.
    continuous: HashMap<u64, SharedParty>,
    /// Executor ids currently running a continuous round, mapped to the
    /// round index — a clean finish is acknowledged with `ROUND`, not
    /// `DONE`, and its transcript is appended to the session's summary.
    round_of_exec: HashMap<u64, u32>,
    /// Sessions submitted and not yet reported back by the executor.
    live: usize,
    frames_in: usize,
    frames_out: usize,
    /// First transport-level failure; the connection reports `Err`.
    error: Option<NetError>,
    /// Socket unusable — queue nothing further at it.
    dead: bool,
}

impl ServerConn {
    fn new(io: ConnIo) -> ServerConn {
        ServerConn {
            io,
            wire_to_exec: HashMap::new(),
            order: Vec::new(),
            summaries: HashMap::new(),
            continuous: HashMap::new(),
            round_of_exec: HashMap::new(),
            live: 0,
            frames_in: 0,
            frames_out: 0,
            error: None,
            dead: false,
        }
    }

    /// Ready to leave the reactor: nothing more will be read, every
    /// submitted session has reported, and the output has drained (a
    /// dead socket drains nowhere and does not wait).
    fn finished(&self) -> bool {
        self.io.read_closed && self.live == 0 && (self.dead || !self.io.wants_write())
    }

    /// Between-round quiescence: the connection holds resident
    /// continuous state and no round is in flight. The idle sweep spares
    /// such connections — a continuous client legitimately goes silent
    /// between churn rounds, and tearing it down would throw away the
    /// very state that makes the next round O(churn). The client owns
    /// the session lifetime (an explicit `DONE` or EOF frees the state);
    /// a connection with a round *in flight* still answers to the
    /// deadline.
    fn quiescent(&self) -> bool {
        self.live == 0 && !self.continuous.is_empty()
    }

    fn into_outcome(mut self) -> Result<ConnectionReport, NetError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut report = ConnectionReport {
            sessions: Vec::with_capacity(self.order.len()),
            frames_in: self.frames_in,
            frames_out: self.frames_out,
            wire_bytes_in: self.io.wire_bytes_in,
            wire_bytes_out: self.io.wire_bytes_out,
        };
        for id in self.order {
            let summary = self
                .summaries
                .remove(&id)
                .expect("every submitted session reports Done or Stranded");
            report.sessions.push(summary);
        }
        Ok(report)
    }
}

/// Runs the server reactor: every stream in `initial` plus everything
/// accepted from `listener` (when given) is served over one shared
/// executor until it closes. Finished connections are handed to `sink`
/// in completion order — `Ok(report)` for an orderly close (including
/// per-session errors and mid-session EOF), `Err` when the transport
/// itself failed. Returns `Err` only for listener/poller-level
/// failures.
pub(crate) fn run_server_reactor<F: SessionFactory + ?Sized>(
    factory: &F,
    listener: Option<&TcpListener>,
    initial: Vec<TcpStream>,
    opts: &ServerOpts,
    sink: &mut dyn FnMut(Result<ConnectionReport, NetError>),
) -> Result<(), NetError> {
    let (mut poller, waker) = Poller::new()?;
    let notify: Notify = Arc::new(move || waker.wake());
    if let Some(listener) = listener {
        listener.set_nonblocking(true)?;
    }

    let mut conns: Vec<Option<ServerConn>> = Vec::new();
    for stream in initial {
        conns.push(Some(ServerConn::new(ConnIo::new(stream)?)));
        if rsr_obs::enabled() {
            // Handed-in streams count as accepted: the reactor serves
            // them exactly like listener arrivals.
            net_metrics().conns_accepted.inc();
            net_metrics().conns_live.inc();
        }
    }
    // Accept budget: the handed-in streams count against `max_conns`.
    let mut accept_budget = opts
        .max_conns
        .map(|max| max.saturating_sub(conns.len()))
        .unwrap_or(usize::MAX);
    if listener.is_none() {
        accept_budget = 0;
    }

    with_executor_notified(
        opts.shards,
        PLACEMENT_SEED,
        Some(notify),
        |_scope, mut injector, events| {
            // Executor session id → (connection slot, wire session id).
            let mut routes: HashMap<u64, (usize, u64)> = HashMap::new();
            let mut next_exec: u64 = 0;
            let mut scratch = vec![0u8; READ_CHUNK];
            let mut fds: Vec<PollFd> = Vec::new();
            let mut fd_slots: Vec<Option<usize>> = Vec::new();

            loop {
                // Done when no more connections can arrive and none remain.
                if accept_budget == 0 && conns.iter().all(Option::is_none) {
                    return Ok(());
                }

                fds.clear();
                fd_slots.clear();
                if accept_budget > 0 {
                    if let Some(listener) = listener {
                        fds.push(PollFd::new(listener_fd(listener), POLLIN));
                        fd_slots.push(None);
                    }
                }
                let mut deadline: Option<Instant> = None;
                for (slot, conn) in conns.iter().enumerate() {
                    let Some(conn) = conn else { continue };
                    let interest = conn.io.interest();
                    if interest != 0 {
                        fds.push(PollFd::new(conn.io.fd(), interest));
                        fd_slots.push(Some(slot));
                    }
                    if let Some(idle) = opts.idle_timeout {
                        if !conn.io.read_closed && !conn.dead && !conn.quiescent() {
                            let at = conn.io.last_activity + idle;
                            deadline = Some(deadline.map_or(at, |d: Instant| d.min(at)));
                        }
                    }
                }
                let timeout = deadline.map(|at| at.saturating_duration_since(Instant::now()));
                poller.wait(&mut fds, timeout)?;
                if rsr_obs::enabled() {
                    note_poll_return(&fds, &fd_slots);
                }

                // Accept everything that is ready.
                let mut accepted_now = Vec::new();
                if let Some(listener) = listener {
                    if accept_budget > 0 && fds.first().is_some_and(PollFd::readable) {
                        while accept_budget > 0 {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    accepted_now.push(stream);
                                    accept_budget -= 1;
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                }
                for stream in accepted_now {
                    let conn = ServerConn::new(ConnIo::new(stream)?);
                    if rsr_obs::enabled() {
                        net_metrics().conns_accepted.inc();
                        net_metrics().conns_live.inc();
                    }
                    match conns.iter_mut().find(|c| c.is_none()) {
                        Some(empty) => *empty = Some(conn),
                        None => conns.push(Some(conn)),
                    }
                }

                // Drain readable connections into the executor.
                for (fd, slot) in fds.iter().zip(&fd_slots) {
                    let Some(slot) = *slot else { continue };
                    if !fd.readable() {
                        continue;
                    }
                    read_into_executor(
                        factory,
                        &mut conns,
                        slot,
                        &mut routes,
                        &mut next_exec,
                        &mut injector,
                        &mut scratch,
                    );
                }

                // Route executor events back to their connections.
                while let Some(ev) = events.try_recv() {
                    match ev {
                        ExecEvent::Frame { id, frame } => {
                            let &(slot, wire) = routes.get(&id).expect("routed session");
                            if let Some(conn) = conns[slot].as_mut() {
                                conn.frames_out += 1;
                                if !conn.dead {
                                    let rec = Record::Frame {
                                        session: wire,
                                        frame,
                                    };
                                    if let Err(e) = conn.io.queue(&rec) {
                                        fail_conn(conn, &injector, e);
                                    }
                                }
                            }
                        }
                        ExecEvent::Done {
                            id,
                            transcript,
                            error,
                        } => {
                            let (slot, wire) = routes.remove(&id).expect("routed session");
                            let conn = conns[slot].as_mut().expect("conn outlives its sessions");
                            conn.live -= 1;
                            let round = conn.round_of_exec.remove(&id);
                            let reply = match (round, error.as_deref()) {
                                // A settled continuous round: acknowledge
                                // with ROUND so the wire id stays live for
                                // the next round (a DONE would retire it).
                                (Some(r), None) => Some(Record::Round {
                                    session: wire,
                                    round: r,
                                }),
                                (None, None) => Some(Record::Done {
                                    session: wire,
                                    status: STATUS_OK,
                                    message: String::new(),
                                }),
                                // The client walked away (or the
                                // connection did); echoing DONE at it
                                // would be noise.
                                (_, Some(ABANDONED)) | (_, Some(CLOSED_MID_SESSION)) => None,
                                (_, Some(reason)) => Some(Record::Done {
                                    session: wire,
                                    status: STATUS_SESSION_ERROR,
                                    message: reason.to_owned(),
                                }),
                            };
                            if let Some(rec) = reply {
                                if !conn.dead {
                                    if let Err(e) = conn.io.queue(&rec) {
                                        fail_conn(conn, &injector, e);
                                    }
                                }
                            }
                            if round.is_some() {
                                // A failed round retires the resident
                                // state — the client saw a DONE and will
                                // not send further rounds for this id.
                                if error.is_some() {
                                    conn.continuous.remove(&wire);
                                }
                                let summary = conn
                                    .summaries
                                    .get_mut(&wire)
                                    .expect("continuous OPEN seeds the summary");
                                summary.transcript.append(transcript);
                                if let Some(e) = error {
                                    summary.error.get_or_insert(e.into_owned());
                                }
                            } else {
                                conn.summaries.insert(
                                    wire,
                                    SessionSummary {
                                        id: wire,
                                        transcript,
                                        error: error.map(|e| e.into_owned()),
                                    },
                                );
                            }
                        }
                        ExecEvent::Stranded { id, transcript } => {
                            let (slot, wire) = routes.remove(&id).expect("routed session");
                            let conn = conns[slot].as_mut().expect("conn outlives its sessions");
                            conn.live -= 1;
                            if conn.round_of_exec.remove(&id).is_some() {
                                let summary = conn
                                    .summaries
                                    .get_mut(&wire)
                                    .expect("continuous OPEN seeds the summary");
                                summary.transcript.append(transcript);
                                summary
                                    .error
                                    .get_or_insert_with(|| CLOSED_MID_SESSION.into());
                            } else {
                                conn.summaries.insert(
                                    wire,
                                    SessionSummary {
                                        id: wire,
                                        transcript,
                                        error: Some(CLOSED_MID_SESSION.into()),
                                    },
                                );
                            }
                        }
                        // The reactor writes control replies directly;
                        // nothing injects.
                        ExecEvent::Injected { .. } => {}
                    }
                }

                // Flush, sweep idlers, retire finished connections.
                let now = Instant::now();
                for conn_slot in &mut conns {
                    let Some(conn) = conn_slot.as_mut() else {
                        continue;
                    };
                    if !conn.dead {
                        if let Err(e) = conn.io.try_flush() {
                            fail_conn(conn, &injector, e);
                        }
                    }
                    if let Some(idle) = opts.idle_timeout {
                        if !conn.io.read_closed
                            && !conn.dead
                            && !conn.quiescent()
                            && now.duration_since(conn.io.last_activity) >= idle
                        {
                            let e = io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("connection idle for {idle:?}, tearing it down"),
                            );
                            if rsr_obs::enabled() {
                                net_metrics().conns_idle_closed.inc();
                                rsr_obs::global_ring().push(
                                    "net_idle_teardown",
                                    conn.live as u64,
                                    idle.as_millis() as u64,
                                );
                            }
                            fail_conn(conn, &injector, e.into());
                        }
                    }
                    if conn.finished() {
                        let conn = conn_slot.take().expect("checked above");
                        if rsr_obs::enabled() {
                            net_metrics().conns_live.dec();
                        }
                        sink(conn.into_outcome());
                    }
                }
            }
        },
    )
}

/// Marks a connection failed: shuts the socket down, and closes every
/// still-live session's executor half so each reports in (as `Done`
/// with [`CLOSED_MID_SESSION`]) and the connection can retire. This is
/// the fix for the deadlock the blocking design hid — without the
/// closes, live halves never produce an event and the reactor would
/// wait on them forever.
fn fail_conn(conn: &mut ServerConn, injector: &rsr_core::executor::Injector<'_>, e: NetError) {
    if conn.error.is_none() {
        conn.error = Some(e);
    }
    conn.dead = true;
    if rsr_obs::enabled() {
        net_metrics().conns_failed.inc();
        rsr_obs::global_ring().push("net_conn_failed", conn.live as u64, conn.io.wire_bytes_in);
    }
    conn.io.kill();
    for &exec in conn.wire_to_exec.values() {
        // Stale closes (sessions already finished) are no-ops.
        injector.close(exec, CLOSED_MID_SESSION);
    }
}

/// Classifies one `poll(2)` return for the wake-reason counters. The
/// listener rides in the slot whose `fd_slots` entry is `None`; any
/// other ready fd is a connection. A return with no registered fd ready
/// means the executor's waker fired or the idle-sweep deadline expired —
/// `netpoll` keeps the waker's readiness internal, so the two are
/// indistinguishable here and share `net_reactor_wakes_other`.
fn note_poll_return(fds: &[PollFd], fd_slots: &[Option<usize>]) {
    let m = net_metrics();
    m.polls.inc();
    let (mut accept, mut readable, mut writable) = (false, false, false);
    for (fd, slot) in fds.iter().zip(fd_slots) {
        if slot.is_none() {
            accept |= fd.readable();
        } else {
            readable |= fd.readable();
            writable |= fd.writable();
        }
    }
    if accept {
        m.wakes_accept.inc();
    }
    if readable {
        m.wakes_readable.inc();
    }
    if writable {
        m.wakes_writable.inc();
    }
    if !(accept || readable || writable) {
        m.wakes_other.inc();
    }
}

/// Drains one readable connection: fill from the socket, decode, route
/// every complete record into the executor, and handle EOF.
#[allow(clippy::too_many_arguments)]
fn read_into_executor<'f, F: SessionFactory + ?Sized>(
    factory: &'f F,
    conns: &mut [Option<ServerConn>],
    slot: usize,
    routes: &mut HashMap<u64, (usize, u64)>,
    next_exec: &mut u64,
    injector: &mut rsr_core::executor::Injector<'f>,
    scratch: &mut [u8],
) {
    let Some(conn) = conns[slot].as_mut() else {
        return;
    };
    if let Err(e) = conn.io.fill(scratch) {
        fail_conn(conn, injector, e);
        return;
    }
    loop {
        match conn.io.next_record() {
            Ok(Some(record)) => {
                if let Err(e) =
                    handle_server_record(factory, conn, slot, record, routes, next_exec, injector)
                {
                    fail_conn(conn, injector, e);
                    return;
                }
            }
            Ok(None) => break,
            Err(e) => {
                fail_conn(conn, injector, e);
                return;
            }
        }
    }
    if conn.io.read_closed {
        if let Some(e) = conn.io.eof_truncation() {
            fail_conn(conn, injector, e);
        } else {
            // Clean EOF. Sessions still live get their local halves
            // closed so they report in (stale closes of finished
            // halves are no-ops); replies already queued (and any
            // frames the workers are still finishing) keep draining —
            // the peer only half-closed its write side. EOF is also
            // the implicit teardown of resident continuous state: the
            // parties drop with the connection.
            for &exec in conn.wire_to_exec.values() {
                injector.close(exec, CLOSED_MID_SESSION);
            }
            conn.continuous.clear();
        }
    }
}

/// Applies one client record to the server state. `Err` means the
/// record itself could not be honored at the transport level (a queue
/// failure); protocol-level problems (unknown ids, duplicate opens)
/// answer with a status `DONE` instead.
fn handle_server_record<'f, F: SessionFactory + ?Sized>(
    factory: &'f F,
    conn: &mut ServerConn,
    slot: usize,
    record: Record,
    routes: &mut HashMap<u64, (usize, u64)>,
    next_exec: &mut u64,
    injector: &mut rsr_core::executor::Injector<'f>,
) -> Result<(), NetError> {
    let mut submit =
        |conn: &mut ServerConn, wire: u64, spec: Option<&SessionSpec>| -> Result<bool, NetError> {
            match factory.open_spec(wire, spec) {
                Some(session) => {
                    let exec = *next_exec;
                    *next_exec += 1;
                    conn.wire_to_exec.insert(wire, exec);
                    conn.order.push(wire);
                    conn.live += 1;
                    routes.insert(exec, (slot, wire));
                    injector.submit(exec, Party::Bob, session);
                    Ok(true)
                }
                None => {
                    conn.io.queue(&Record::Done {
                        session: wire,
                        status: STATUS_UNKNOWN_SESSION,
                        message: "unknown session id".into(),
                    })?;
                    Ok(false)
                }
            }
        };

    match record {
        Record::Open {
            session: wire,
            spec,
        } => {
            if conn.wire_to_exec.contains_key(&wire) || conn.continuous.contains_key(&wire) {
                conn.io.queue(&Record::Done {
                    session: wire,
                    status: STATUS_SESSION_ERROR,
                    message: "session opened twice".into(),
                })?;
            } else if let Some(spec) = spec.filter(|s| s.continuous) {
                // A continuous open installs resident state and seeds
                // the session's (initially empty) summary; the first
                // executor work happens at the first ROUND.
                match factory.open_continuous(wire, &spec) {
                    Some(party) => {
                        conn.continuous.insert(wire, party);
                        conn.order.push(wire);
                        conn.summaries.insert(
                            wire,
                            SessionSummary {
                                id: wire,
                                transcript: Transcript::new(),
                                error: None,
                            },
                        );
                    }
                    None => {
                        conn.io.queue(&Record::Done {
                            session: wire,
                            status: STATUS_UNKNOWN_SESSION,
                            message: "factory does not serve continuous sessions".into(),
                        })?;
                    }
                }
            } else {
                submit(conn, wire, spec.as_ref())?;
            }
        }
        Record::Frame {
            session: wire,
            frame,
        } => {
            if !conn.wire_to_exec.contains_key(&wire) {
                // A frame for a continuous session outside any round is
                // stale (its round already resolved); count and drop it.
                if conn.continuous.contains_key(&wire) {
                    conn.frames_in += 1;
                    return Ok(());
                }
                // A first frame without OPEN implicitly opens the
                // session (Alice-initiated protocols over a bare
                // TcpChannel).
                if !submit(conn, wire, None)? {
                    return Ok(());
                }
            }
            conn.frames_in += 1;
            let exec = conn.wire_to_exec[&wire];
            injector.deliver(exec, frame);
        }
        Record::Done { session: wire, .. } => {
            // The client gave up on the session; drop our half. Unknown
            // or already-finished ids are no-ops. For a continuous id
            // this is the orderly whole-session teardown: the resident
            // party is freed, the settled rounds' summary stays.
            if let Some(&exec) = conn.wire_to_exec.get(&wire) {
                injector.close(exec, ABANDONED);
            }
            conn.continuous.remove(&wire);
        }
        Record::Round {
            session: wire,
            round,
        } => {
            let Some(party) = conn.continuous.get(&wire) else {
                conn.io.queue(&Record::Done {
                    session: wire,
                    status: STATUS_UNKNOWN_SESSION,
                    message: "round for a session not open as continuous".into(),
                })?;
                return Ok(());
            };
            let bob = match BobRound::begin(party) {
                Ok(bob) if bob.round() == round => bob,
                Ok(bob) => {
                    // Desync: the client's round counter disagrees with
                    // the resident state (e.g. a half-settled previous
                    // round). Fail loudly and retire the id — dropping
                    // `bob` unstarted rolls the server party back.
                    let msg = format!(
                        "continuous round desync: client at round {round}, server at {}",
                        bob.round()
                    );
                    drop(bob);
                    conn.continuous.remove(&wire);
                    conn.io.queue(&Record::Done {
                        session: wire,
                        status: STATUS_SESSION_ERROR,
                        message: msg,
                    })?;
                    return Ok(());
                }
                Err(e) => {
                    conn.continuous.remove(&wire);
                    conn.io.queue(&Record::Done {
                        session: wire,
                        status: STATUS_SESSION_ERROR,
                        message: format!("cannot begin round {round}: {e}"),
                    })?;
                    return Ok(());
                }
            };
            let exec = *next_exec;
            *next_exec += 1;
            // Replaces the previous round's (finished) mapping, so
            // frames and the client's eventual DONE route to the round
            // in flight.
            conn.wire_to_exec.insert(wire, exec);
            conn.live += 1;
            conn.round_of_exec.insert(exec, round);
            routes.insert(exec, (slot, wire));
            injector.submit(exec, Party::Bob, Box::new(bob));
        }
    }
    Ok(())
}
