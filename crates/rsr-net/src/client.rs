//! [`ReconClient`]: batch many Alice sessions over one connection.
//!
//! The client plays **Alice** for every session it runs. A batch works
//! in two phases: first every session is `OPEN`ed and everything each
//! Alice can already say is written — the frames of different sessions
//! interleave on the wire — then the client routes the server's records
//! to sessions by id, pumping whatever replies they unlock, until the
//! server has said `DONE` for every session. A dedicated reader thread
//! drains the server's records for the whole lifetime of the batch, so
//! a server speaking first for many sessions at once (the Gap protocol's
//! round 1) can never fill both socket buffers and deadlock against the
//! client's own writing.
//!
//! A session-level failure (local decode error, server error status)
//! marks that one session failed and the batch carries on; only
//! transport-level failures abort the whole batch.

use crate::codec::{read_record, write_record, NetError, Record, STATUS_OK, STATUS_SESSION_ERROR};
use crate::server::NetSession;
use rsr_core::transcript::{Party, Transcript};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// One session's client-side record within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// Both directions of the session's traffic with measured bit sizes —
    /// entry-for-entry the transcript the in-memory driver produces.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl SessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What one [`ReconClient::run_batch`] call did.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-session reports, in the order the batch supplied them.
    pub sessions: Vec<SessionReport>,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server (all sessions).
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
}

impl BatchReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

struct ClientSlot<'s> {
    id: u64,
    session: Box<dyn NetSession + 's>,
    transcript: Transcript,
    error: Option<String>,
    /// The server sent `DONE` (or we abandoned the session): nothing
    /// further is expected on the wire for it.
    settled: bool,
}

/// The client end of a multiplexed reconciliation connection. One batch
/// per connection: [`ReconClient::run_batch`] consumes the client and
/// shuts the connection down when the batch settles.
pub struct ReconClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ReconClient {
    /// Connects to a [`ReconServer`](crate::server::ReconServer).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ReconClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ReconClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Bounds how long the batch blocks on a silent server before the
    /// batch fails with a transport error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Runs a batch of `(session id, Alice session)` pairs over this
    /// connection, multiplexed, to completion. Ids must be unique within
    /// the batch and mean something to the server's factory.
    pub fn run_batch<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
    ) -> Result<BatchReport, NetError> {
        let ReconClient { reader, mut writer } = self;
        let mut report = BatchReport::default();
        let mut slots: Vec<ClientSlot<'s>> = Vec::with_capacity(sessions.len());
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(sessions.len());
        for (id, session) in sessions {
            if index.insert(id, slots.len()).is_some() {
                return Err(NetError::Malformed("duplicate session id in batch"));
            }
            slots.push(ClientSlot {
                id,
                session,
                transcript: Transcript::new(),
                error: None,
                settled: false,
            });
        }

        // The reader thread forwards the server's records for the whole
        // batch, so incoming traffic drains even while we are writing.
        let (tx, rx) = mpsc::channel();
        let _reader_thread = thread::spawn(move || {
            let mut reader = reader;
            loop {
                match read_record(&mut reader) {
                    Ok(Some(item)) => {
                        if tx.send(Ok(Some(item))).is_err() {
                            return; // batch is gone; stop reading
                        }
                    }
                    terminal => {
                        let _ = tx.send(terminal);
                        return;
                    }
                }
            }
        });
        let mut closed = false;

        let outcome = run_phases(
            &mut writer,
            &rx,
            &mut report,
            &mut slots,
            &index,
            &mut closed,
        );

        // Nothing more to say (or the transport died): close our write
        // half so the server's handler sees EOF, finishes, and releases
        // the connection. On a transport error also shut the read half,
        // which unblocks the reader thread so it exits instead of
        // leaking, blocked in read(), for the life of the process.
        writer.flush().ok();
        match &outcome {
            Ok(()) => {
                writer.get_ref().shutdown(Shutdown::Write).ok();
            }
            Err(_) => {
                writer.get_ref().shutdown(Shutdown::Both).ok();
            }
        }
        outcome?;

        report.sessions = slots
            .into_iter()
            .map(|s| SessionReport {
                id: s.id,
                transcript: s.transcript,
                error: s.error,
            })
            .collect();
        Ok(report)
    }
}

/// Both phases of a batch; split out so [`ReconClient::run_batch`] can
/// run connection teardown on every exit path.
fn run_phases<'s>(
    writer: &mut BufWriter<TcpStream>,
    rx: &mpsc::Receiver<Result<Option<(Record, u64)>, NetError>>,
    report: &mut BatchReport,
    slots: &mut Vec<ClientSlot<'s>>,
    index: &HashMap<u64, usize>,
    closed: &mut bool,
) -> Result<(), NetError> {
    // Phase 1: open everything and say everything we already can — this
    // is where the sessions' opening frames interleave. Between sessions,
    // handle whatever the server has already answered; once the server is
    // known gone, every remaining session is already marked failed and
    // writing to the dead socket would only turn those per-session
    // reports into a whole-batch transport error.
    for i in 0..slots.len() {
        if *closed {
            break;
        }
        report.wire_bytes_out += write_record(
            writer,
            &Record::Open {
                session: slots[i].id,
            },
        )?;
        pump_slot(writer, report, &mut slots[i])?;
        writer.flush()?;
        while let Ok(msg) = rx.try_recv() {
            dispatch(msg, writer, report, slots, index, closed)?;
        }
    }

    // Phase 2: route the server's records until every session settles.
    while !*closed && slots.iter().any(|s| !s.settled) {
        let msg = rx.recv().unwrap_or(Ok(None));
        dispatch(msg, writer, report, slots, index, closed)?;
    }
    writer.flush()?;
    Ok(())
}

/// Handles one message from the reader thread.
fn dispatch(
    msg: Result<Option<(Record, u64)>, NetError>,
    writer: &mut BufWriter<TcpStream>,
    report: &mut BatchReport,
    slots: &mut [ClientSlot<'_>],
    index: &HashMap<u64, usize>,
    closed: &mut bool,
) -> Result<(), NetError> {
    let record = match msg {
        Err(e) => return Err(e),
        Ok(None) => {
            *closed = true;
            for slot in slots.iter_mut().filter(|s| !s.settled) {
                slot.settled = true;
                slot.error
                    .get_or_insert_with(|| "connection closed before session settled".into());
            }
            return Ok(());
        }
        Ok(Some((record, n))) => {
            report.wire_bytes_in += n;
            record
        }
    };
    let slot_of = |id: u64| {
        index.get(&id).copied().ok_or(NetError::Malformed(
            "record for a session id not in the batch",
        ))
    };
    match record {
        Record::Open { .. } => {
            return Err(NetError::Malformed("server sent an open record"));
        }
        Record::Frame { session: id, frame } => {
            let slot = &mut slots[slot_of(id)?];
            if slot.settled || slot.error.is_some() {
                return Ok(()); // stale frame for a dead session
            }
            report.frames_in += 1;
            slot.transcript
                .record_from(Party::Bob, frame.label.clone(), frame.bit_len);
            if let Err(e) = slot.session.on_frame(frame) {
                abandon(writer, report, slot, e)?;
            } else {
                pump_slot(writer, report, slot)?;
            }
            writer.flush()?;
        }
        Record::Done {
            session: id,
            status,
            message,
        } => {
            let slot = &mut slots[slot_of(id)?];
            slot.settled = true;
            if status != STATUS_OK {
                slot.error
                    .get_or_insert(format!("server status {status}: {message}"));
            } else if !slot.session.is_done() {
                slot.error.get_or_insert_with(|| {
                    "server finished but the local session is incomplete".into()
                });
            }
        }
    }
    Ok(())
}

/// Sends everything `slot`'s Alice half can currently say.
fn pump_slot(
    writer: &mut BufWriter<TcpStream>,
    report: &mut BatchReport,
    slot: &mut ClientSlot<'_>,
) -> Result<(), NetError> {
    if slot.error.is_some() {
        return Ok(());
    }
    loop {
        match slot.session.poll_send() {
            Ok(Some(frame)) => {
                slot.transcript
                    .record_from(Party::Alice, frame.label.clone(), frame.bit_len);
                report.frames_out += 1;
                report.wire_bytes_out += write_record(
                    writer,
                    &Record::Frame {
                        session: slot.id,
                        frame,
                    },
                )?;
            }
            Ok(None) => return Ok(()),
            Err(e) => return abandon(writer, report, slot, e),
        }
    }
}

/// Marks the session failed locally and tells the server to drop its
/// half, so a Bob blocked on this Alice cannot wedge the connection.
fn abandon(
    writer: &mut BufWriter<TcpStream>,
    report: &mut BatchReport,
    slot: &mut ClientSlot<'_>,
    error: String,
) -> Result<(), NetError> {
    report.wire_bytes_out += write_record(
        writer,
        &Record::Done {
            session: slot.id,
            status: STATUS_SESSION_ERROR,
            message: error.clone(),
        },
    )?;
    slot.error = Some(error);
    slot.settled = true;
    Ok(())
}
