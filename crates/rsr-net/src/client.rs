//! [`ReconClient`] and [`MultiClient`]: batch many Alice sessions over
//! one or many connections, all driven by **one** shared session
//! executor behind the readiness reactor.
//!
//! The client plays **Alice** for every session it runs. A round first
//! `OPEN`s every session — each `OPEN` optionally carrying a negotiated
//! [`SessionSpec`] so the server can build its Bob half from the wire
//! instead of out-of-band trace state — then submits all Alice halves
//! to the shared worker-pool executor: each half's opening say is
//! pumped on its shard and the frames of different sessions (and
//! different connections) interleave. The reactor loop owns every
//! socket: nonblocking reads run through the incremental record
//! decoder, routed to sessions by id — wake-on-frame, each record
//! waking exactly one session — while produced frames queue per
//! connection and drain as sockets accept them. No reader threads, no
//! writer threads: a client drives C connections with `1 + shards`
//! threads total.
//!
//! Failure is scoped tightly. A session-level failure (local decode
//! error, server error status) marks that one session failed and the
//! round carries on. A *connection*-level failure — abrupt disconnect,
//! truncated record, idle timeout — settles every unsettled session on
//! that connection with an error, closes their local halves so each
//! reports in (the blocking design instead deadlocked waiting on
//! them), and leaves every other connection's sessions untouched. The
//! single-connection [`ReconClient`] surfaces a connection failure as
//! the batch-level `Err` it always did — but as a returned error, never
//! a `join().expect` panic.
//!
//! [`MultiClient`] keeps its connections alive between rounds: call
//! [`MultiClient::run_batches`] repeatedly to keep injecting new
//! session batches on live connections, then [`MultiClient::finish`]
//! to half-close and drain them.

use crate::codec::{NetError, Record, SessionSpec, STATUS_OK, STATUS_SESSION_ERROR};
use crate::executor::{default_shards, PLACEMENT_SEED};
use crate::reactor::{ConnIo, READ_CHUNK};
use crate::server::NetSession;
use netpoll::{PollFd, Poller, POLLIN};
use rsr_core::continuous::{AliceRound, ContinuousError, SharedParty};
use rsr_core::executor::{with_executor_notified, ExecEvent, Injector, Notify};
use rsr_core::transcript::{Party, Transcript};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One session's client-side record within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// Both directions of the session's traffic with measured bit sizes —
    /// entry-for-entry the transcript the in-memory driver produces.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl SessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What one round did on one connection.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-session reports, in the order the batch supplied them.
    pub sessions: Vec<SessionReport>,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session id
    /// (all sessions). Counted at routing time, before the executor
    /// decides whether the session is still live, so a frame racing a
    /// session's failure is counted even though the worker drops it as
    /// stale.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
    /// The connection-level failure, when this connection's transport
    /// died mid-round (every unsettled session then carries a matching
    /// per-session error). `None` for an orderly round — including one
    /// where the server closed cleanly before every session settled.
    pub transport_error: Option<NetError>,
}

impl BatchReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

/// One session's client-side record within a [`LoadReport`]: the batch
/// fields plus the open-loop timing the load harness needs.
#[derive(Clone, Debug)]
pub struct LoadSessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// When this session was *scheduled* to arrive, as an offset from the
    /// run's start — fixed before the run by the arrival schedule.
    pub scheduled: Duration,
    /// When the generator actually injected it (OPEN queued, Alice half
    /// submitted). `injected - scheduled` is the generator's own lag; a
    /// large lag means the load loop itself could not keep up and the
    /// cell's numbers should be treated with suspicion.
    pub injected: Duration,
    /// When the session fully settled (local half done *and* server
    /// `DONE` received), as an offset from the run's start; `None` if it
    /// never settled cleanly.
    pub settled: Option<Duration>,
    /// Both directions of the session's traffic with measured bit sizes.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl LoadSessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The session's open-loop latency: settle time minus *scheduled*
    /// arrival. Measuring from the schedule (not the actual injection)
    /// charges generator lag to the measurement instead of silently
    /// forgiving it — the coordinated-omission rule (docs/loadgen.md).
    pub fn latency(&self) -> Option<Duration> {
        self.settled.map(|s| s.saturating_sub(self.scheduled))
    }
}

/// What one open-loop run did on one connection.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Per-session reports, in schedule order.
    pub sessions: Vec<LoadSessionReport>,
    /// From the run's start to the last session settling (or to the loop
    /// ending, when sessions failed).
    pub elapsed: Duration,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session id.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
    /// The connection-level failure, when this connection's transport
    /// died mid-run; see [`BatchReport::transport_error`].
    pub transport_error: Option<NetError>,
}

impl LoadReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// The achieved completion rate in sessions/sec: completed sessions
    /// over the run's elapsed span (0 for an empty or instant run).
    pub fn achieved_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The largest `injected - scheduled` lag across the run — the
    /// generator's own tardiness, reported so a cell can prove its
    /// open-loop numbers are trustworthy.
    pub fn max_inject_lag(&self) -> Duration {
        self.sessions
            .iter()
            .map(|s| s.injected.saturating_sub(s.scheduled))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One session a round will run: its wire id, the Alice half, and an
/// optional [`SessionSpec`] to carry on the `OPEN` so the server builds
/// its Bob half from the wire instead of out-of-band state.
pub struct SessionPlan<'s> {
    /// The session id to use on the wire — unique per connection across
    /// the connection's whole lifetime (rounds included), except that a
    /// *continuous* session reuses its id across its rounds.
    pub id: u64,
    /// Negotiation to send with the `OPEN`; `None` sends the legacy
    /// bare open and leaves instance lookup to the server's factory.
    pub spec: Option<SessionSpec>,
    /// The local Alice half.
    pub session: Box<dyn NetSession + 's>,
    /// For a continuous session, the round index this plan drives:
    /// `Some(0)` opens the session (the spec must be marked continuous)
    /// and runs round 0; `Some(r > 0)` runs round `r` on the
    /// already-open id, sending only a `ROUND` record. `None` is an
    /// ordinary one-shot session.
    pub round: Option<u32>,
}

impl<'s> SessionPlan<'s> {
    /// A plan with no negotiation spec (the server's factory resolves
    /// the id by itself).
    pub fn new(id: u64, session: Box<dyn NetSession + 's>) -> SessionPlan<'s> {
        SessionPlan {
            id,
            spec: None,
            session,
            round: None,
        }
    }

    /// Attaches a negotiation spec to send with the `OPEN`.
    pub fn with_spec(mut self, spec: SessionSpec) -> SessionPlan<'s> {
        self.spec = Some(spec);
        self
    }

    /// Opens a **continuous** session: sends `OPEN` with `spec` marked
    /// continuous, then drives round 0 of `party` (which must be fresh —
    /// no rounds settled yet). The server's factory builds its resident
    /// Bob half from the spec; later rounds ride
    /// [`SessionPlan::next_round`] under the same id.
    pub fn open_continuous(
        id: u64,
        spec: SessionSpec,
        party: &SharedParty,
    ) -> Result<SessionPlan<'static>, ContinuousError> {
        let alice = AliceRound::begin(party)?;
        let round = alice.round();
        if round != 0 {
            // Dropping the unstarted round rolls the party back.
            return Err(ContinuousError::Round(format!(
                "open_continuous needs a fresh party, this one is at round {round}"
            )));
        }
        Ok(SessionPlan {
            id,
            spec: Some(spec.into_continuous()),
            session: Box::new(alice),
            round: Some(0),
        })
    }

    /// Drives the next incremental round of an already-open continuous
    /// session: only a `ROUND` record travels, no `OPEN`.
    pub fn next_round(
        id: u64,
        party: &SharedParty,
    ) -> Result<SessionPlan<'static>, ContinuousError> {
        let alice = AliceRound::begin(party)?;
        let round = alice.round();
        Ok(SessionPlan {
            id,
            spec: None,
            session: Box::new(alice),
            round: Some(round),
        })
    }
}

/// Client-side bookkeeping for one session of a round.
struct ClientSlot {
    id: u64,
    /// `Some(r)` for a continuous round plan: the slot settles on the
    /// server's `ROUND` ack for exactly round `r`, not on `DONE`.
    round: Option<u32>,
    transcript: Transcript,
    error: Option<String>,
    /// The server said `DONE` (or we abandoned / lost the connection):
    /// nothing further is expected on the wire for it.
    settled: bool,
    /// The executor reported the local Alice half finished, failed, or
    /// stranded — its transcript has been collected. (Also set directly
    /// for sessions that were never injected.)
    local_done: bool,
    /// The instant both of the above became true — the session's settle
    /// time. Stamped once, inside the event loop, so load mode can report
    /// per-session latency; batch mode ignores it.
    settled_at: Option<Instant>,
}

impl ClientSlot {
    fn new(id: u64, round: Option<u32>) -> ClientSlot {
        ClientSlot {
            id,
            round,
            transcript: Transcript::new(),
            error: None,
            settled: false,
            local_done: false,
            settled_at: None,
        }
    }

    fn resolved(&self) -> bool {
        self.settled && self.local_done
    }

    /// Stamps the settle time on the transition to fully-settled.
    fn note_progress(&mut self) {
        if self.settled && self.local_done && self.settled_at.is_none() {
            self.settled_at = Some(Instant::now());
        }
    }
}

/// Per-session error when the transport under it died.
const FAILED_BEFORE_SETTLE: &str = "connection failed before session settled";
/// Per-session error when the server closed cleanly first.
const CLOSED_BEFORE_SETTLE: &str = "connection closed before session settled";

/// How long a round keeps trying to drain already-queued output after
/// every session resolved, before giving the connection up as wedged.
const FLUSH_GRACE: Duration = Duration::from_secs(5);
/// How long [`MultiClient::finish`] waits for the server's EOFs.
const FINISH_GRACE: Duration = Duration::from_secs(5);

/// One connection's plan for a round: the sessions plus, in open-loop
/// mode, the arrival schedule.
struct RoundPlan<'s> {
    sessions: Vec<SessionPlan<'s>>,
    schedule: Option<Vec<Duration>>,
}

/// One connection's state while a round runs.
struct RoundConn<'s> {
    slots: Vec<ClientSlot>,
    wire_to_slot: HashMap<u64, usize>,
    /// Slot index → executor id, once injected.
    exec_of_slot: Vec<Option<u64>>,
    pending: std::vec::IntoIter<SessionPlan<'s>>,
    schedule: Option<Vec<Duration>>,
    next_up: usize,
    injected: Vec<Option<Duration>>,
    frames_in: usize,
    frames_out: usize,
    base_in: u64,
    base_out: u64,
    /// First transport-level failure on this connection.
    transport_error: Option<NetError>,
    /// Socket unusable after a failure.
    dead: bool,
    /// The server closed its side cleanly (no failure, but the
    /// connection is spent).
    eof_clean: bool,
    /// Set when every slot resolved but output is still draining.
    flush_deadline: Option<Instant>,
}

impl RoundConn<'_> {
    fn usable(&self) -> bool {
        !self.dead && !self.eof_clean
    }

    /// Sessions injected on the wire and not yet settled — the ones an
    /// idle deadline protects.
    fn in_flight(&self) -> bool {
        self.slots[..self.next_up].iter().any(|s| !s.settled)
    }

    fn all_resolved(&self) -> bool {
        self.slots.iter().all(ClientSlot::resolved)
    }
}

/// One connection's result of a round, before shaping into a
/// [`BatchReport`] or [`LoadReport`].
struct RoundOutcome {
    slots: Vec<ClientSlot>,
    injected: Vec<Option<Duration>>,
    frames_in: usize,
    frames_out: usize,
    wire_bytes_in: u64,
    wire_bytes_out: u64,
    transport_error: Option<NetError>,
}

/// A pooled connection between rounds.
struct PoolConn {
    io: Option<ConnIo>,
    /// Why `io` is `None` — surfaced when a later round still names
    /// this connection.
    closed_reason: Option<String>,
    /// Session ids ever used on this connection; reuse would collide
    /// with the server's per-connection id map.
    used: HashSet<u64>,
    /// Ids opened as continuous sessions — the one sanctioned form of
    /// id reuse: each later round names the same id again.
    continuous: HashSet<u64>,
}

/// Marks a connection failed mid-round: kills the socket, settles every
/// unsettled session with an error, and closes each injected session's
/// local half so it reports in. The close is what lets the round
/// terminate — the blocking design left those halves waiting forever.
fn fail_conn(
    rc: &mut RoundConn<'_>,
    io: Option<&mut ConnIo>,
    injector: &Injector<'_>,
    e: NetError,
) {
    let msg = format!("{FAILED_BEFORE_SETTLE}: {e}");
    if rc.transport_error.is_none() {
        rc.transport_error = Some(e);
    }
    rc.dead = true;
    if rsr_obs::enabled() {
        let unsettled = rc.slots.iter().filter(|s| !s.settled).count();
        rsr_obs::global_ring().push(
            "net_client_conn_failed",
            unsettled as u64,
            io.as_ref().map_or(0, |io| io.wire_bytes_in),
        );
    }
    if let Some(io) = io {
        io.kill();
    }
    settle_leftovers(rc, injector, &msg);
}

/// The server closed its side cleanly; anything unsettled becomes a
/// per-session error but the round (and report) stays `Ok`.
fn close_conn_clean(rc: &mut RoundConn<'_>, injector: &Injector<'_>) {
    rc.eof_clean = true;
    settle_leftovers(rc, injector, CLOSED_BEFORE_SETTLE);
}

fn settle_leftovers(rc: &mut RoundConn<'_>, injector: &Injector<'_>, msg: &str) {
    for (idx, slot) in rc.slots.iter_mut().enumerate() {
        if slot.settled {
            continue;
        }
        slot.settled = true;
        slot.error.get_or_insert_with(|| msg.to_owned());
        match rc.exec_of_slot[idx] {
            // Stale closes (local half already finished) are no-ops.
            // This is a failure path, so the owned reason is fine.
            Some(exec) => {
                injector.close(exec, msg.to_owned());
            }
            // Never injected: there is no local half to wait for.
            None => slot.local_done = true,
        }
        slot.note_progress();
    }
}

/// The round driver: injects each connection's sessions (on schedule in
/// open-loop mode, immediately otherwise), routes wire records and
/// executor events, and runs until every session on every connection is
/// resolved. Returns per-connection outcomes plus the shared clock —
/// `Err` only for argument errors and poller setup, never for
/// connection failures (those are per-connection outcomes).
fn drive_rounds<'s>(
    pool: &mut [PoolConn],
    plans: Vec<RoundPlan<'s>>,
    shards: usize,
    idle_timeout: Option<Duration>,
) -> Result<(Vec<RoundOutcome>, Instant, Duration), NetError> {
    if plans.len() != pool.len() {
        return Err(NetError::Malformed("one session plan per connection"));
    }
    for (conn, plan) in pool.iter_mut().zip(&plans) {
        if let Some(schedule) = &plan.schedule {
            if schedule.len() != plan.sessions.len() {
                return Err(NetError::Malformed(
                    "arrival schedule length must match session count",
                ));
            }
            if schedule.windows(2).any(|w| w[0] > w[1]) {
                return Err(NetError::Malformed(
                    "arrival schedule must be non-decreasing",
                ));
            }
        }
        let mut seen = HashSet::with_capacity(plan.sessions.len());
        for s in &plan.sessions {
            if !seen.insert(s.id) {
                return Err(NetError::Malformed("duplicate session id in batch"));
            }
            let fresh = conn.used.insert(s.id);
            match s.round {
                // One-shot sessions and continuous opens burn a fresh id.
                None | Some(0) => {
                    if !fresh {
                        return Err(NetError::Malformed("session id reused on this connection"));
                    }
                }
                // Later rounds are the sanctioned reuse — but only of an
                // id this connection actually opened as continuous.
                Some(_) => {
                    if !conn.continuous.contains(&s.id) {
                        return Err(NetError::Malformed(
                            "continuous round for a session this connection never opened",
                        ));
                    }
                }
            }
            if s.round == Some(0) {
                if !s.spec.as_ref().is_some_and(|spec| spec.continuous) {
                    return Err(NetError::Malformed(
                        "continuous round 0 needs a spec marked continuous",
                    ));
                }
                conn.continuous.insert(s.id);
            } else if s.round.is_none() && s.spec.as_ref().is_some_and(|spec| spec.continuous) {
                return Err(NetError::Malformed(
                    "a continuous spec needs a round index on its plan",
                ));
            }
        }
    }

    let mut state: Vec<RoundConn<'s>> = Vec::with_capacity(plans.len());
    for (conn, plan) in pool.iter().zip(plans) {
        let n = plan.sessions.len();
        let slots: Vec<ClientSlot> = plan
            .sessions
            .iter()
            .map(|s| ClientSlot::new(s.id, s.round))
            .collect();
        let wire_to_slot = plan
            .sessions
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        let (base_in, base_out) = conn
            .io
            .as_ref()
            .map_or((0, 0), |io| (io.wire_bytes_in, io.wire_bytes_out));
        state.push(RoundConn {
            slots,
            wire_to_slot,
            exec_of_slot: vec![None; n],
            pending: plan.sessions.into_iter(),
            schedule: plan.schedule,
            next_up: 0,
            injected: vec![None; n],
            frames_in: 0,
            frames_out: 0,
            base_in,
            base_out,
            transport_error: None,
            dead: false,
            eof_clean: false,
            flush_deadline: None,
        });
    }

    let (mut poller, waker) = Poller::new()?;
    let notify: Notify = Arc::new(move || waker.wake());
    let t0 = Instant::now();
    let mut loop_end = Duration::ZERO;

    with_executor_notified(
        shards,
        PLACEMENT_SEED,
        Some(notify),
        |_scope, mut injector, events| {
            // Connections already closed by an earlier round: resolve
            // their sessions immediately.
            for (c, rc) in state.iter_mut().enumerate() {
                if pool[c].io.is_none() {
                    let reason = pool[c]
                        .closed_reason
                        .clone()
                        .unwrap_or_else(|| "connection already closed".into());
                    rc.eof_clean = true;
                    for slot in &mut rc.slots {
                        slot.settled = true;
                        slot.local_done = true;
                        slot.error.get_or_insert_with(|| reason.clone());
                    }
                }
            }

            // Executor id → (connection index, slot index). Wire ids are
            // per-connection; the shared executor needs unique ids.
            let mut routes: HashMap<u64, (usize, usize)> = HashMap::new();
            let mut next_exec: u64 = 0;
            let mut scratch = vec![0u8; READ_CHUNK];
            let mut fds: Vec<PollFd> = Vec::new();
            let mut fd_conns: Vec<usize> = Vec::new();

            loop {
                // Inject everything that is due. Submit before queueing
                // OPEN: were OPEN flushed first, the server could answer
                // before the executor knows the id.
                for c in 0..state.len() {
                    let rc = &mut state[c];
                    if !rc.usable() {
                        continue;
                    }
                    let elapsed = t0.elapsed();
                    while rc.next_up < rc.slots.len() {
                        let due = match &rc.schedule {
                            Some(schedule) => elapsed >= schedule[rc.next_up],
                            None => true,
                        };
                        if !due {
                            break;
                        }
                        let plan = rc.pending.next().expect("pending matches slots");
                        let exec = next_exec;
                        next_exec += 1;
                        let slot_idx = rc.next_up;
                        rc.exec_of_slot[slot_idx] = Some(exec);
                        routes.insert(exec, (c, slot_idx));
                        injector.submit(exec, Party::Alice, plan.session);
                        let io = pool[c].io.as_mut().expect("usable conn has io");
                        io.last_activity = Instant::now();
                        rc.injected[slot_idx] = Some(t0.elapsed());
                        rc.next_up += 1;
                        // A one-shot session OPENs; a continuous round 0
                        // OPENs (spec marked continuous) then announces
                        // round 0; a later round sends only ROUND — the
                        // id is already resident on the server.
                        let queued = match plan.round {
                            None => io.queue(&Record::Open {
                                session: plan.id,
                                spec: plan.spec,
                            }),
                            Some(0) => io
                                .queue(&Record::Open {
                                    session: plan.id,
                                    spec: plan.spec,
                                })
                                .and_then(|()| {
                                    io.queue(&Record::Round {
                                        session: plan.id,
                                        round: 0,
                                    })
                                }),
                            Some(round) => io.queue(&Record::Round {
                                session: plan.id,
                                round,
                            }),
                        };
                        if let Err(e) = queued {
                            fail_conn(rc, Some(io), &injector, e);
                            break;
                        }
                    }
                }

                // Route executor events: frames out, local halves done.
                while let Some(ev) = events.try_recv() {
                    match ev {
                        ExecEvent::Frame { id, frame } => {
                            let &(c, s) = routes.get(&id).expect("routed session");
                            let rc = &mut state[c];
                            rc.frames_out += 1;
                            if rc.usable() {
                                let rec = Record::Frame {
                                    session: rc.slots[s].id,
                                    frame,
                                };
                                let io = pool[c].io.as_mut().expect("usable conn has io");
                                if let Err(e) = io.queue(&rec) {
                                    fail_conn(rc, Some(io), &injector, e);
                                }
                            }
                        }
                        ExecEvent::Done {
                            id,
                            transcript,
                            error,
                        } => {
                            let (c, s) = routes.remove(&id).expect("routed session");
                            let rc = &mut state[c];
                            rc.slots[s].local_done = true;
                            rc.slots[s].transcript = transcript;
                            if let Some(e) = error {
                                // A genuine local failure (not one relayed
                                // from a server DONE — those arrive with
                                // `settled` already set) abandons the
                                // session so a Bob blocked on this Alice
                                // cannot wedge the connection.
                                if !rc.slots[s].settled {
                                    rc.slots[s].settled = true;
                                    if rc.usable() {
                                        let rec = Record::Done {
                                            session: rc.slots[s].id,
                                            status: STATUS_SESSION_ERROR,
                                            message: e.clone().into_owned(),
                                        };
                                        let io = pool[c].io.as_mut().expect("usable conn has io");
                                        if let Err(err) = io.queue(&rec) {
                                            fail_conn(rc, Some(io), &injector, err);
                                        }
                                    }
                                }
                                rc.slots[s].error.get_or_insert(e.into_owned());
                            }
                            rc.slots[s].note_progress();
                        }
                        ExecEvent::Stranded { id, transcript } => {
                            let (c, s) = routes.remove(&id).expect("routed session");
                            let rc = &mut state[c];
                            rc.slots[s].local_done = true;
                            rc.slots[s].transcript = transcript;
                            rc.slots[s]
                                .error
                                .get_or_insert_with(|| CLOSED_BEFORE_SETTLE.into());
                            rc.slots[s].note_progress();
                        }
                        // The reactor injects nothing.
                        ExecEvent::Injected { .. } => {}
                    }
                }

                // Flush queued output; sweep idle and flush-stalled conns.
                let now = Instant::now();
                for c in 0..state.len() {
                    let rc = &mut state[c];
                    if !rc.usable() {
                        continue;
                    }
                    let io = pool[c].io.as_mut().expect("usable conn has io");
                    if let Err(e) = io.try_flush() {
                        fail_conn(rc, Some(io), &injector, e);
                        continue;
                    }
                    if let Some(idle) = idle_timeout {
                        if rc.in_flight() && now.duration_since(io.last_activity) >= idle {
                            let e = io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("no wire activity for {idle:?} with sessions in flight"),
                            );
                            fail_conn(rc, Some(io), &injector, e.into());
                            continue;
                        }
                    }
                    if rc.all_resolved() && io.wants_write() {
                        let deadline = *rc.flush_deadline.get_or_insert(now + FLUSH_GRACE);
                        if now >= deadline {
                            let e = io::Error::new(
                                io::ErrorKind::TimedOut,
                                "output stalled after every session resolved",
                            );
                            fail_conn(rc, Some(io), &injector, e.into());
                        }
                    }
                }

                // Done when every connection's round is over: all slots
                // resolved and (for live conns) the output drained.
                let round_over = state.iter().enumerate().all(|(c, rc)| {
                    rc.all_resolved()
                        && (!rc.usable() || !pool[c].io.as_ref().is_some_and(ConnIo::wants_write))
                });
                if round_over {
                    break;
                }

                // Wait for readiness: sockets, the next scheduled
                // arrival, the nearest idle/flush deadline, or the
                // executor's waker.
                fds.clear();
                fd_conns.clear();
                let mut deadline: Option<Instant> = None;
                let note = |at: Instant, deadline: &mut Option<Instant>| {
                    *deadline = Some(deadline.map_or(at, |d| d.min(at)));
                };
                for (c, rc) in state.iter().enumerate() {
                    if !rc.usable() {
                        continue;
                    }
                    let io = pool[c].io.as_ref().expect("usable conn has io");
                    let interest = io.interest();
                    if interest != 0 {
                        fds.push(PollFd::new(io.fd(), interest));
                        fd_conns.push(c);
                    }
                    if let Some(schedule) = &rc.schedule {
                        if rc.next_up < rc.slots.len() {
                            note(t0 + schedule[rc.next_up], &mut deadline);
                        }
                    }
                    if let Some(idle) = idle_timeout {
                        if rc.in_flight() {
                            note(io.last_activity + idle, &mut deadline);
                        }
                    }
                    if let Some(flush) = rc.flush_deadline {
                        note(flush, &mut deadline);
                    }
                }
                let timeout = deadline.map(|at| at.saturating_duration_since(Instant::now()));
                if rsr_obs::enabled() {
                    crate::obs::net_metrics().client_polls.inc();
                }
                if let Err(e) = poller.wait(&mut fds, timeout) {
                    // Poller failure is unrecoverable for the whole round:
                    // fail every live connection and settle out.
                    for c in 0..state.len() {
                        let rc = &mut state[c];
                        if rc.usable() {
                            let err = io::Error::new(e.kind(), e.to_string());
                            fail_conn(rc, pool[c].io.as_mut(), &injector, err.into());
                        }
                    }
                    continue;
                }

                // Drain readable sockets into the executor.
                for (fd, &c) in fds.iter().zip(&fd_conns) {
                    if !fd.readable() {
                        continue;
                    }
                    let rc = &mut state[c];
                    if !rc.usable() {
                        continue;
                    }
                    let io = pool[c].io.as_mut().expect("usable conn has io");
                    if let Err(e) = io.fill(&mut scratch) {
                        fail_conn(rc, Some(io), &injector, e);
                        continue;
                    }
                    loop {
                        match io.next_record() {
                            Ok(Some(record)) => {
                                if let Err(e) = route_server_record(rc, record, &injector) {
                                    fail_conn(rc, Some(io), &injector, e);
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                fail_conn(rc, Some(io), &injector, e);
                                break;
                            }
                        }
                    }
                    if rc.usable() && io.read_closed {
                        match io.eof_truncation() {
                            Some(e) => fail_conn(rc, Some(io), &injector, e),
                            None => close_conn_clean(rc, &injector),
                        }
                    }
                }
            }
            loop_end = t0.elapsed();
        },
    );

    // Shape outcomes and update the pool: dead and cleanly-closed
    // connections drop out of it.
    let mut outcomes = Vec::with_capacity(state.len());
    for (c, rc) in state.into_iter().enumerate() {
        let conn = &mut pool[c];
        let (wire_in, wire_out) = conn.io.as_ref().map_or((rc.base_in, rc.base_out), |io| {
            (io.wire_bytes_in, io.wire_bytes_out)
        });
        if rc.dead {
            let reason = rc
                .transport_error
                .as_ref()
                .map_or_else(|| "connection failed".to_owned(), NetError::to_string);
            conn.io = None;
            conn.closed_reason.get_or_insert(reason);
        } else if rc.eof_clean {
            conn.io = None;
            conn.closed_reason
                .get_or_insert_with(|| "connection closed by server".into());
        }
        outcomes.push(RoundOutcome {
            slots: rc.slots,
            injected: rc.injected,
            frames_in: rc.frames_in,
            frames_out: rc.frames_out,
            wire_bytes_in: wire_in - rc.base_in,
            wire_bytes_out: wire_out - rc.base_out,
            transport_error: rc.transport_error,
        });
    }
    Ok((outcomes, t0, loop_end))
}

/// Applies one server record to a connection's round state. `Err` means
/// the server violated the record contract and the connection is done
/// for.
fn route_server_record(
    rc: &mut RoundConn<'_>,
    record: Record,
    injector: &Injector<'_>,
) -> Result<(), NetError> {
    match record {
        Record::Open { .. } => Err(NetError::Malformed("server sent an open record")),
        Record::Frame { session, frame } => {
            let (s, exec) = lookup(rc, session)?;
            rc.frames_in += 1;
            let _ = s;
            injector.deliver(exec, frame);
            Ok(())
        }
        Record::Done {
            session,
            status,
            message,
        } => {
            let (s, exec) = lookup(rc, session)?;
            let slot = &mut rc.slots[s];
            slot.settled = true;
            // Close the local half so it reports in even if it cannot
            // finish on its own; the close is stale — a silent no-op —
            // whenever the half already completed.
            let reason = if status == STATUS_OK {
                "server finished but the local session is incomplete".to_owned()
            } else {
                let e = format!("server status {status}: {message}");
                slot.error.get_or_insert_with(|| e.clone());
                e
            };
            injector.close(exec, reason);
            slot.note_progress();
            Ok(())
        }
        Record::Round { session, round } => {
            // The server acknowledges a settled continuous round by
            // echoing the ROUND record (its keys frame, if any, was
            // already on the wire before the ack). The local Alice half
            // finishes on its own from that frame, so nothing is closed
            // here — the slot just stops expecting wire traffic.
            let (s, _exec) = lookup(rc, session)?;
            let slot = &mut rc.slots[s];
            if slot.round != Some(round) {
                return Err(NetError::Malformed(
                    "round ack for a round this batch is not driving",
                ));
            }
            slot.settled = true;
            slot.note_progress();
            Ok(())
        }
    }
}

/// Resolves a wire session id to `(slot index, executor id)`; a record
/// for an id this round never injected is a contract violation.
fn lookup(rc: &RoundConn<'_>, wire: u64) -> Result<(usize, u64), NetError> {
    let unknown = NetError::Malformed("record for a session id not in the batch");
    let Some(&s) = rc.wire_to_slot.get(&wire) else {
        return Err(unknown);
    };
    match rc.exec_of_slot[s] {
        Some(exec) => Ok((s, exec)),
        None => Err(unknown),
    }
}

fn slots_into_session_reports(slots: Vec<ClientSlot>) -> Vec<SessionReport> {
    slots
        .into_iter()
        .map(|s| SessionReport {
            id: s.id,
            transcript: s.transcript,
            error: s.error,
        })
        .collect()
}

fn outcome_into_batch_report(outcome: RoundOutcome) -> BatchReport {
    BatchReport {
        sessions: slots_into_session_reports(outcome.slots),
        frames_out: outcome.frames_out,
        frames_in: outcome.frames_in,
        wire_bytes_out: outcome.wire_bytes_out,
        wire_bytes_in: outcome.wire_bytes_in,
        transport_error: outcome.transport_error,
    }
}

fn outcome_into_load_report(
    outcome: RoundOutcome,
    schedule: &[Duration],
    t0: Instant,
    loop_end: Duration,
) -> LoadReport {
    let mut report = LoadReport {
        frames_out: outcome.frames_out,
        frames_in: outcome.frames_in,
        wire_bytes_out: outcome.wire_bytes_out,
        wire_bytes_in: outcome.wire_bytes_in,
        transport_error: outcome.transport_error,
        ..LoadReport::default()
    };
    report.sessions = outcome
        .slots
        .into_iter()
        .zip(schedule.iter().zip(outcome.injected))
        .map(|(slot, (scheduled, injected_at))| {
            let mut error = slot.error;
            if injected_at.is_none() {
                error.get_or_insert_with(|| {
                    "load run ended before this session was injected".into()
                });
            }
            LoadSessionReport {
                id: slot.id,
                scheduled: *scheduled,
                injected: injected_at.unwrap_or(loop_end),
                settled: slot.settled_at.map(|at| at.saturating_duration_since(t0)),
                transcript: slot.transcript,
                error,
            }
        })
        .collect();
    // The honest span: to the last settle when everything completed,
    // to the loop's end when anything failed or never settled.
    report.elapsed = if report.failed() == 0 {
        report
            .sessions
            .iter()
            .filter_map(|s| s.settled)
            .max()
            .unwrap_or(loop_end)
    } else {
        loop_end
    };
    report
}

/// A pool of connections to one
/// [`ReconServer`](crate::server::ReconServer), all driven by a single
/// reactor loop and **one** shared executor: C connections cost
/// `1 + shards` threads, not `C × threads`. Connections stay alive
/// between rounds — keep calling [`MultiClient::run_batches`] /
/// [`MultiClient::run_loads`] to inject new session batches onto live
/// connections — and a connection that fails mid-round takes only its
/// own sessions down, never its neighbors'.
pub struct MultiClient {
    conns: Vec<PoolConn>,
    shards: usize,
    idle_timeout: Option<Duration>,
}

impl MultiClient {
    /// Connects `conns` connections (≥ 1) to `addr`.
    pub fn connect(addr: impl ToSocketAddrs, conns: usize) -> io::Result<MultiClient> {
        assert!(conns >= 1, "a client pool needs at least one connection");
        let mut streams = Vec::with_capacity(conns);
        for _ in 0..conns {
            streams.push(TcpStream::connect(&addr)?);
        }
        MultiClient::from_streams(streams, default_shards(), None)
    }

    fn from_streams(
        streams: Vec<TcpStream>,
        shards: usize,
        idle_timeout: Option<Duration>,
    ) -> io::Result<MultiClient> {
        let mut conns = Vec::with_capacity(streams.len());
        for stream in streams {
            conns.push(PoolConn {
                io: Some(ConnIo::new(stream)?),
                closed_reason: None,
                used: HashSet::new(),
                continuous: HashSet::new(),
            });
        }
        Ok(MultiClient {
            conns,
            shards,
            idle_timeout,
        })
    }

    /// Sets the shared executor's worker-shard count.
    pub fn with_shards(mut self, shards: usize) -> MultiClient {
        assert!(shards >= 1, "the executor needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets (or disables) the per-connection idle deadline: a
    /// connection with sessions in flight but no wire activity for this
    /// long is failed — its sessions settle with errors, other
    /// connections are untouched.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> MultiClient {
        self.idle_timeout = timeout;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// How many connections the pool was built with.
    pub fn conns(&self) -> usize {
        self.conns.len()
    }

    /// Connections still usable for further rounds.
    pub fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.io.is_some()).count()
    }

    /// The batch-round engine behind both the deprecated
    /// [`MultiClient::run_batches`] and the [`Driver`](crate::Driver)
    /// surface.
    pub(crate) fn run_batches_inner<'s>(
        &mut self,
        batches: Vec<Vec<SessionPlan<'s>>>,
    ) -> Result<Vec<BatchReport>, NetError> {
        let plans = batches
            .into_iter()
            .map(|sessions| RoundPlan {
                sessions,
                schedule: None,
            })
            .collect();
        let (outcomes, _t0, _end) =
            drive_rounds(&mut self.conns, plans, self.shards, self.idle_timeout)?;
        Ok(outcomes
            .into_iter()
            .map(outcome_into_batch_report)
            .collect())
    }

    /// The open-loop engine behind both the deprecated
    /// [`MultiClient::run_loads`] and the [`Driver`](crate::Driver)
    /// surface.
    pub(crate) fn run_loads_inner<'s>(
        &mut self,
        loads: Vec<(Vec<SessionPlan<'s>>, Vec<Duration>)>,
    ) -> Result<Vec<LoadReport>, NetError> {
        let mut schedules = Vec::with_capacity(loads.len());
        let plans = loads
            .into_iter()
            .map(|(sessions, schedule)| {
                schedules.push(schedule.clone());
                RoundPlan {
                    sessions,
                    schedule: Some(schedule),
                }
            })
            .collect();
        let (outcomes, t0, loop_end) =
            drive_rounds(&mut self.conns, plans, self.shards, self.idle_timeout)?;
        Ok(outcomes
            .into_iter()
            .zip(schedules)
            .map(|(outcome, schedule)| outcome_into_load_report(outcome, &schedule, t0, loop_end))
            .collect())
    }

    /// Runs one round: `batches[i]` is the session batch for connection
    /// `i` (empty batches are fine). Session ids must be unique per
    /// connection across the connection's lifetime. Returns one
    /// [`BatchReport`] per connection; a connection-level failure is
    /// reported in that connection's
    /// [`transport_error`](BatchReport::transport_error), never as a
    /// call-level `Err` — other connections' sessions settle normally.
    #[deprecated(
        note = "use the unified driver: `Driver::new(addr).conns(n).batch(plans)` \
                or a connected driver's `batch`"
    )]
    pub fn run_batches<'s>(
        &mut self,
        batches: Vec<Vec<SessionPlan<'s>>>,
    ) -> Result<Vec<BatchReport>, NetError> {
        self.run_batches_inner(batches)
    }

    /// Runs one **open-loop** round: for connection `i`, session `j` of
    /// `loads[i].0` is injected at offset `loads[i].1[j]` from the
    /// round's start regardless of how many earlier sessions are still
    /// in flight. All connections share one clock and one executor.
    /// Latency accounting follows the coordinated-omission rule — see
    /// [`LoadSessionReport::latency`].
    #[deprecated(
        note = "use the unified driver: `Driver::new(addr).conns(n).load(loads)` \
                or a connected driver's `load`"
    )]
    pub fn run_loads<'s>(
        &mut self,
        loads: Vec<(Vec<SessionPlan<'s>>, Vec<Duration>)>,
    ) -> Result<Vec<LoadReport>, NetError> {
        self.run_loads_inner(loads)
    }

    /// Retires a continuous session: sends `DONE` under its id so the
    /// server drops the resident party, and frees the id's continuous
    /// standing on this connection. Queued output is flushed best-effort
    /// here and drains fully on the next round or at
    /// [`MultiClient::finish`].
    pub(crate) fn close_continuous(&mut self, conn: usize, id: u64) -> Result<(), NetError> {
        let c = self
            .conns
            .get_mut(conn)
            .ok_or(NetError::Malformed("no such connection in the pool"))?;
        if !c.continuous.remove(&id) {
            return Err(NetError::Malformed(
                "id is not open as a continuous session on this connection",
            ));
        }
        // A dead connection already took the server-side state with it.
        let Some(io) = c.io.as_mut() else {
            return Ok(());
        };
        io.queue(&Record::Done {
            session: id,
            status: STATUS_OK,
            message: String::new(),
        })?;
        io.try_flush()
    }

    /// Half-closes every live connection (shutdown of the write side —
    /// the server sees EOF, finishes, and closes) and drains the read
    /// sides to EOF, bounded by a grace period. Errors at this point
    /// are ignored: the connections are being thrown away.
    pub fn finish(self) {
        let mut ios: Vec<ConnIo> = self.conns.into_iter().filter_map(|c| c.io).collect();
        for io in &ios {
            io.shutdown_write();
        }
        let Ok((mut poller, _waker)) = Poller::new() else {
            return;
        };
        let deadline = Instant::now() + FINISH_GRACE;
        let mut scratch = vec![0u8; READ_CHUNK];
        while !ios.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let mut fds: Vec<PollFd> = ios.iter().map(|io| PollFd::new(io.fd(), POLLIN)).collect();
            if poller.wait(&mut fds, Some(deadline - now)).is_err() {
                return;
            }
            let mut keep = Vec::with_capacity(ios.len());
            for (io, fd) in ios.into_iter().zip(&fds) {
                let mut io = io;
                if !fd.readable() || !io.drain_read(&mut scratch) {
                    keep.push(io);
                }
            }
            ios = keep;
        }
    }
}

/// The client end of a single multiplexed reconciliation connection.
/// One batch per connection: [`ReconClient::run_batch`] consumes the
/// client and shuts the connection down when the batch settles. (For
/// many connections, or many batches on one connection, use
/// [`MultiClient`].)
pub struct ReconClient {
    stream: TcpStream,
    shards: usize,
}

impl ReconClient {
    /// Connects to a [`ReconServer`](crate::server::ReconServer). The
    /// batch is driven with [`default_shards`] worker shards unless
    /// [`ReconClient::with_shards`] overrides it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ReconClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(ReconClient {
            stream,
            shards: default_shards(),
        })
    }

    /// Sets the executor worker-shard count for the batch.
    pub fn with_shards(mut self, shards: usize) -> ReconClient {
        assert!(shards >= 1, "a batch needs at least one shard");
        self.shards = shards;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounds how long the batch tolerates a silent server with
    /// sessions in flight before the batch fails with a transport
    /// error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        // Stored on the socket; the reactor reads it back as the
        // connection's idle deadline (nonblocking reads never block, so
        // the kernel-level timeout itself is inert).
        self.stream.set_read_timeout(timeout)
    }

    /// Runs a batch of `(session id, Alice session)` pairs over this
    /// connection, multiplexed and executor-driven, to completion. Ids
    /// must be unique within the batch and mean something to the
    /// server's factory.
    #[deprecated(
        note = "use the unified driver: `Driver::new(addr).batch(vec![plans])` \
                (one connection is the driver's default)"
    )]
    pub fn run_batch<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
    ) -> Result<BatchReport, NetError> {
        let ReconClient { stream, shards } = self;
        let idle = stream.read_timeout()?;
        let mut client = MultiClient::from_streams(vec![stream], shards, idle)?;
        let plans = sessions
            .into_iter()
            .map(|(id, session)| SessionPlan::new(id, session))
            .collect();
        let mut reports = client.run_batches_inner(vec![plans])?;
        let mut report = reports.pop().expect("one report per connection");
        if let Some(e) = report.transport_error.take() {
            return Err(e);
        }
        client.finish();
        Ok(report)
    }

    /// Runs `(session id, Alice session)` pairs as an **open-loop** load:
    /// the i-th session is injected at offset `schedule[i]` from the
    /// run's start regardless of how many earlier sessions are still in
    /// flight. The schedule must be non-decreasing and as long as the
    /// session list.
    ///
    /// Latency in the returned [`LoadReport`] is measured from the
    /// *scheduled* arrival, not the actual injection, so any lag the
    /// generator itself accumulates is charged to the measurement rather
    /// than silently forgiven (coordinated omission). The largest such
    /// lag is reported via [`LoadReport::max_inject_lag`].
    #[deprecated(
        note = "use the unified driver: `Driver::new(addr).load(vec![(plans, schedule)])` \
                (one connection is the driver's default)"
    )]
    pub fn run_load<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
        schedule: &[Duration],
    ) -> Result<LoadReport, NetError> {
        let ReconClient { stream, shards } = self;
        let idle = stream.read_timeout()?;
        let mut client = MultiClient::from_streams(vec![stream], shards, idle)?;
        let plans = sessions
            .into_iter()
            .map(|(id, session)| SessionPlan::new(id, session))
            .collect();
        let mut reports = client.run_loads_inner(vec![(plans, schedule.to_vec())])?;
        let mut report = reports.pop().expect("one report per connection");
        if let Some(e) = report.transport_error.take() {
            return Err(e);
        }
        client.finish();
        Ok(report)
    }
}
