//! [`ReconClient`]: batch many Alice sessions over one connection,
//! driven by the sharded session executor.
//!
//! The client plays **Alice** for every session it runs. A batch first
//! `OPEN`s every session (so a server speaking first — the Gap
//! protocol's round 1 — can start immediately), then submits all Alice
//! halves to a worker-pool executor: each half's opening say is pumped
//! on its shard and the frames of different sessions interleave on the
//! wire. A dedicated reader thread routes the server's records to
//! sessions by id — wake-on-frame, each record waking exactly one
//! session — for the whole lifetime of the batch, so a server flooding
//! many sessions at once can never fill both socket buffers and
//! deadlock against the client's own writing. The calling thread drains
//! the executor's event stream, writing produced frames and tracking
//! which sessions have settled.
//!
//! A session-level failure (local decode error, server error status)
//! marks that one session failed and the batch carries on; only
//! transport-level failures abort the whole batch.

use crate::codec::{read_record, write_record, NetError, Record, STATUS_OK, STATUS_SESSION_ERROR};
use crate::executor::{default_shards, PLACEMENT_SEED};
use crate::server::NetSession;
use rsr_core::executor::{with_executor, ExecEvent, Injector};
use rsr_core::transcript::{Party, Transcript};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One session's client-side record within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// Both directions of the session's traffic with measured bit sizes —
    /// entry-for-entry the transcript the in-memory driver produces.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl SessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What one [`ReconClient::run_batch`] call did.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-session reports, in the order the batch supplied them.
    pub sessions: Vec<SessionReport>,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session id
    /// (all sessions). Counted at routing time, before the executor
    /// decides whether the session is still live, so a frame racing a
    /// session's failure is counted even though the worker drops it as
    /// stale.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
}

impl BatchReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

/// Injected-event code base for a server `DONE`; the status rides in
/// `code - CODE_SERVER_DONE`.
const CODE_SERVER_DONE: u32 = 0x100;
/// Injected-event code: the server closed the connection cleanly.
const CODE_EOF: u32 = 1;
/// Injected-event code: the transport failed or the server violated the
/// record contract; the reader thread carries the typed error out.
const CODE_FATAL: u32 = 2;

/// Client-side bookkeeping for one session of the batch.
struct ClientSlot {
    id: u64,
    transcript: Transcript,
    error: Option<String>,
    /// The server said `DONE` (or we abandoned / lost the connection):
    /// nothing further is expected on the wire for it.
    settled: bool,
    /// The executor reported the local Alice half finished, failed, or
    /// stranded — its transcript has been collected.
    local_done: bool,
}

/// The client end of a multiplexed reconciliation connection. One batch
/// per connection: [`ReconClient::run_batch`] consumes the client and
/// shuts the connection down when the batch settles.
pub struct ReconClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    shards: usize,
}

impl ReconClient {
    /// Connects to a [`ReconServer`](crate::server::ReconServer). The
    /// batch is driven with [`default_shards`] worker shards unless
    /// [`ReconClient::with_shards`] overrides it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ReconClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ReconClient {
            reader,
            writer: BufWriter::new(stream),
            shards: default_shards(),
        })
    }

    /// Sets the executor worker-shard count for the batch.
    pub fn with_shards(mut self, shards: usize) -> ReconClient {
        assert!(shards >= 1, "a batch needs at least one shard");
        self.shards = shards;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounds how long the batch blocks on a silent server before the
    /// batch fails with a transport error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Runs a batch of `(session id, Alice session)` pairs over this
    /// connection, multiplexed and executor-driven, to completion. Ids
    /// must be unique within the batch and mean something to the
    /// server's factory.
    pub fn run_batch<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
    ) -> Result<BatchReport, NetError> {
        let ReconClient {
            reader,
            mut writer,
            shards,
        } = self;
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(sessions.len());
        for (pos, (id, _)) in sessions.iter().enumerate() {
            if index.insert(*id, pos).is_some() {
                return Err(NetError::Malformed("duplicate session id in batch"));
            }
        }
        let mut slots: Vec<ClientSlot> = sessions
            .iter()
            .map(|(id, _)| ClientSlot {
                id: *id,
                transcript: Transcript::new(),
                error: None,
                settled: false,
                local_done: false,
            })
            .collect();
        let mut report = BatchReport::default();

        let outcome: Result<(), NetError> =
            with_executor(shards, PLACEMENT_SEED, |scope, mut injector, events| {
                // Announce every session before the first frame, so the
                // server can build all its halves (and speak first where
                // the protocol starts server-side) while we still write.
                for (id, _) in &sessions {
                    report.wire_bytes_out +=
                        write_record(&mut writer, &Record::Open { session: *id })?;
                }
                writer.flush()?;
                for (id, session) in sessions {
                    injector.submit(id, Party::Alice, session);
                }

                // The reader owns the injector: every server record is a
                // wake (deliver/close) plus, for control flow, an event
                // injected *before* the wake so the main loop always
                // learns the cause before the executor's consequence.
                let reader_thread = scope.spawn(move || client_read_loop(reader, injector));

                let mut fatal: Option<NetError> = None;
                let mut aborted = false;
                while slots.iter().any(|s| !s.settled || !s.local_done) {
                    let Some(first) = events.recv() else { break };
                    let mut next = Some(first);
                    while let Some(ev) = next {
                        handle_event(
                            ev,
                            &index,
                            &mut slots,
                            &mut writer,
                            &mut report,
                            &mut fatal,
                            &mut aborted,
                        );
                        next = events.try_recv();
                    }
                    if fatal.is_none() {
                        if let Err(e) = writer.flush() {
                            fatal = Some(e.into());
                        }
                    }
                    if aborted || fatal.is_some() {
                        break;
                    }
                }

                // Nothing more to say (or the transport died): close our
                // write half so the server's handler sees EOF, finishes,
                // and releases the connection — which in turn EOFs our
                // reader thread so the scope can join it. On a failure
                // shut both halves to unblock the reader immediately.
                writer.flush().ok();
                if fatal.is_some() || aborted {
                    writer.get_ref().shutdown(Shutdown::Both).ok();
                } else {
                    writer.get_ref().shutdown(Shutdown::Write).ok();
                }
                let (wire_bytes_in, frames_in, read_error) =
                    reader_thread.join().expect("client reader thread");
                report.wire_bytes_in = wire_bytes_in;
                report.frames_in = frames_in;
                if let Some(e) = fatal {
                    return Err(e);
                }
                if let Some(e) = read_error {
                    return Err(e);
                }
                Ok(())
            });
        outcome?;

        report.sessions = slots
            .into_iter()
            .map(|s| SessionReport {
                id: s.id,
                transcript: s.transcript,
                error: s.error,
            })
            .collect();
        Ok(report)
    }
}

/// Applies one executor event to the batch state.
fn handle_event(
    ev: ExecEvent,
    index: &HashMap<u64, usize>,
    slots: &mut [ClientSlot],
    writer: &mut BufWriter<TcpStream>,
    report: &mut BatchReport,
    fatal: &mut Option<NetError>,
    aborted: &mut bool,
) {
    match ev {
        // The local half produced a frame: put it on the wire.
        ExecEvent::Frame { id, frame } => {
            report.frames_out += 1;
            if fatal.is_none() {
                match write_record(writer, &Record::Frame { session: id, frame }) {
                    Ok(n) => report.wire_bytes_out += n,
                    Err(e) => *fatal = Some(e),
                }
            }
        }
        // The local half left the executor: collect its transcript; a
        // genuine local failure (not one relayed from a server DONE —
        // those arrive with `settled` already set) abandons the session
        // so a Bob blocked on this Alice cannot wedge the connection.
        ExecEvent::Done {
            id,
            transcript,
            error,
        } => {
            let slot = &mut slots[index[&id]];
            slot.local_done = true;
            slot.transcript = transcript;
            if let Some(e) = error {
                if !slot.settled && fatal.is_none() {
                    match write_record(
                        writer,
                        &Record::Done {
                            session: id,
                            status: STATUS_SESSION_ERROR,
                            message: e.clone(),
                        },
                    ) {
                        Ok(n) => report.wire_bytes_out += n,
                        Err(err) => *fatal = Some(err),
                    }
                    slot.settled = true;
                }
                slot.error.get_or_insert(e);
            }
        }
        // Executor shutdown caught the half still live: the connection
        // is gone and its `CODE_EOF`/`CODE_FATAL` cause was already
        // handled; just collect what crossed.
        ExecEvent::Stranded { id, transcript } => {
            let slot = &mut slots[index[&id]];
            slot.local_done = true;
            slot.transcript = transcript;
            slot.error
                .get_or_insert_with(|| "connection closed before session settled".into());
        }
        ExecEvent::Injected { id, code, note } => match code {
            CODE_EOF => {
                for slot in slots.iter_mut().filter(|s| !s.settled) {
                    slot.settled = true;
                    slot.error
                        .get_or_insert_with(|| "connection closed before session settled".into());
                }
            }
            CODE_FATAL => *aborted = true,
            code => {
                let status = (code - CODE_SERVER_DONE) as u8;
                let slot = &mut slots[index[&id]];
                slot.settled = true;
                if status != STATUS_OK {
                    slot.error
                        .get_or_insert(format!("server status {status}: {note}"));
                }
            }
        },
    }
}

/// The reader thread: routes server records into the executor. Returns
/// `(wire bytes read, frames read, transport error)`; dropping the
/// injector on exit is what ultimately shuts the executor down.
fn client_read_loop(
    mut reader: BufReader<TcpStream>,
    injector: Injector<'_>,
) -> (u64, usize, Option<NetError>) {
    let mut wire_bytes_in = 0u64;
    let mut frames_in = 0usize;
    loop {
        match read_record(&mut reader) {
            Ok(Some((record, n))) => {
                wire_bytes_in += n;
                match record {
                    Record::Open { .. } => {
                        injector.inject(0, CODE_FATAL, "server sent an open record");
                        return (
                            wire_bytes_in,
                            frames_in,
                            Some(NetError::Malformed("server sent an open record")),
                        );
                    }
                    Record::Frame { session: id, frame } => {
                        if injector.shard_of(id).is_none() {
                            injector.inject(0, CODE_FATAL, "record for an unknown session");
                            return (
                                wire_bytes_in,
                                frames_in,
                                Some(NetError::Malformed(
                                    "record for a session id not in the batch",
                                )),
                            );
                        }
                        frames_in += 1;
                        injector.deliver(id, frame);
                    }
                    Record::Done {
                        session: id,
                        status,
                        message,
                    } => {
                        if injector.shard_of(id).is_none() {
                            injector.inject(0, CODE_FATAL, "record for an unknown session");
                            return (
                                wire_bytes_in,
                                frames_in,
                                Some(NetError::Malformed(
                                    "record for a session id not in the batch",
                                )),
                            );
                        }
                        // Inject the cause first (the event stream is
                        // FIFO), then close the local half so it reports
                        // in even if it cannot finish on its own. The
                        // close is stale — a silent no-op — whenever the
                        // half already completed.
                        injector.inject(id, CODE_SERVER_DONE + status as u32, message.clone());
                        let reason = if status == STATUS_OK {
                            "server finished but the local session is incomplete".to_owned()
                        } else {
                            format!("server status {status}: {message}")
                        };
                        injector.close(id, reason);
                    }
                }
            }
            Ok(None) => {
                injector.inject(0, CODE_EOF, "");
                return (wire_bytes_in, frames_in, None);
            }
            Err(e) => {
                injector.inject(0, CODE_FATAL, e.to_string());
                return (wire_bytes_in, frames_in, Some(e));
            }
        }
    }
}
