//! [`ReconClient`]: batch many Alice sessions over one connection,
//! driven by the sharded session executor.
//!
//! The client plays **Alice** for every session it runs. A batch first
//! `OPEN`s every session (so a server speaking first — the Gap
//! protocol's round 1 — can start immediately), then submits all Alice
//! halves to a worker-pool executor: each half's opening say is pumped
//! on its shard and the frames of different sessions interleave on the
//! wire. A dedicated reader thread routes the server's records to
//! sessions by id — wake-on-frame, each record waking exactly one
//! session — for the whole lifetime of the batch, so a server flooding
//! many sessions at once can never fill both socket buffers and
//! deadlock against the client's own writing. The calling thread drains
//! the executor's event stream, writing produced frames and tracking
//! which sessions have settled.
//!
//! A session-level failure (local decode error, server error status)
//! marks that one session failed and the batch carries on; only
//! transport-level failures abort the whole batch.

use crate::codec::{read_record, write_record, NetError, Record, STATUS_OK, STATUS_SESSION_ERROR};
use crate::executor::{default_shards, PLACEMENT_SEED};
use crate::server::NetSession;
use rsr_core::executor::{with_executor, ExecEvent, Injector, Wait};
use rsr_core::transcript::{Party, Transcript};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The injector shared between the driving loop (which submits sessions
/// — all upfront in batch mode, on schedule in load mode) and the reader
/// thread (which routes and validates server records). Contention is one
/// uncontended lock per record; shutdown-by-dropping still works because
/// the executor winds down when the last clone is gone.
type SharedInjector<'env> = Arc<Mutex<Injector<'env>>>;

/// One session's client-side record within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// Both directions of the session's traffic with measured bit sizes —
    /// entry-for-entry the transcript the in-memory driver produces.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl SessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What one [`ReconClient::run_batch`] call did.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-session reports, in the order the batch supplied them.
    pub sessions: Vec<SessionReport>,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session id
    /// (all sessions). Counted at routing time, before the executor
    /// decides whether the session is still live, so a frame racing a
    /// session's failure is counted even though the worker drops it as
    /// stale.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
}

impl BatchReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

/// One session's client-side record within a [`LoadReport`]: the batch
/// fields plus the open-loop timing the load harness needs.
#[derive(Clone, Debug)]
pub struct LoadSessionReport {
    /// The session id used on the wire.
    pub id: u64,
    /// When this session was *scheduled* to arrive, as an offset from the
    /// run's start — fixed before the run by the arrival schedule.
    pub scheduled: Duration,
    /// When the generator actually injected it (OPEN written, Alice half
    /// submitted). `injected - scheduled` is the generator's own lag; a
    /// large lag means the load loop itself could not keep up and the
    /// cell's numbers should be treated with suspicion.
    pub injected: Duration,
    /// When the session fully settled (local half done *and* server
    /// `DONE` received), as an offset from the run's start; `None` if it
    /// never settled cleanly.
    pub settled: Option<Duration>,
    /// Both directions of the session's traffic with measured bit sizes.
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
}

impl LoadSessionReport {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The session's open-loop latency: settle time minus *scheduled*
    /// arrival. Measuring from the schedule (not the actual injection)
    /// charges generator lag to the measurement instead of silently
    /// forgiving it — the coordinated-omission rule (docs/loadgen.md).
    pub fn latency(&self) -> Option<Duration> {
        self.settled.map(|s| s.saturating_sub(self.scheduled))
    }
}

/// What one [`ReconClient::run_load`] call did.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Per-session reports, in schedule order.
    pub sessions: Vec<LoadSessionReport>,
    /// From the run's start to the last session settling (or to the loop
    /// ending, when sessions failed).
    pub elapsed: Duration,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session id.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
}

impl LoadReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// The achieved completion rate in sessions/sec: completed sessions
    /// over the run's elapsed span (0 for an empty or instant run).
    pub fn achieved_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The largest `injected - scheduled` lag across the run — the
    /// generator's own tardiness, reported so a cell can prove its
    /// open-loop numbers are trustworthy.
    pub fn max_inject_lag(&self) -> Duration {
        self.sessions
            .iter()
            .map(|s| s.injected.saturating_sub(s.scheduled))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Injected-event code base for a server `DONE`; the status rides in
/// `code - CODE_SERVER_DONE`.
const CODE_SERVER_DONE: u32 = 0x100;
/// Injected-event code: the server closed the connection cleanly.
const CODE_EOF: u32 = 1;
/// Injected-event code: the transport failed or the server violated the
/// record contract; the reader thread carries the typed error out.
const CODE_FATAL: u32 = 2;

/// Client-side bookkeeping for one session of the batch.
struct ClientSlot {
    id: u64,
    transcript: Transcript,
    error: Option<String>,
    /// The server said `DONE` (or we abandoned / lost the connection):
    /// nothing further is expected on the wire for it.
    settled: bool,
    /// The executor reported the local Alice half finished, failed, or
    /// stranded — its transcript has been collected.
    local_done: bool,
    /// The instant both of the above became true — the session's settle
    /// time. Stamped once, inside the event loop, so load mode can report
    /// per-session latency; batch mode ignores it.
    settled_at: Option<Instant>,
}

impl ClientSlot {
    fn new(id: u64) -> ClientSlot {
        ClientSlot {
            id,
            transcript: Transcript::new(),
            error: None,
            settled: false,
            local_done: false,
            settled_at: None,
        }
    }

    /// Stamps the settle time on the transition to fully-settled.
    fn note_progress(&mut self) {
        if self.settled && self.local_done && self.settled_at.is_none() {
            self.settled_at = Some(Instant::now());
        }
    }
}

/// The client end of a multiplexed reconciliation connection. One batch
/// per connection: [`ReconClient::run_batch`] consumes the client and
/// shuts the connection down when the batch settles.
pub struct ReconClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    shards: usize,
}

impl ReconClient {
    /// Connects to a [`ReconServer`](crate::server::ReconServer). The
    /// batch is driven with [`default_shards`] worker shards unless
    /// [`ReconClient::with_shards`] overrides it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ReconClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ReconClient {
            reader,
            writer: BufWriter::new(stream),
            shards: default_shards(),
        })
    }

    /// Sets the executor worker-shard count for the batch.
    pub fn with_shards(mut self, shards: usize) -> ReconClient {
        assert!(shards >= 1, "a batch needs at least one shard");
        self.shards = shards;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounds how long the batch blocks on a silent server before the
    /// batch fails with a transport error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Runs a batch of `(session id, Alice session)` pairs over this
    /// connection, multiplexed and executor-driven, to completion. Ids
    /// must be unique within the batch and mean something to the
    /// server's factory.
    pub fn run_batch<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
    ) -> Result<BatchReport, NetError> {
        let ReconClient {
            reader,
            mut writer,
            shards,
        } = self;
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(sessions.len());
        for (pos, (id, _)) in sessions.iter().enumerate() {
            if index.insert(*id, pos).is_some() {
                return Err(NetError::Malformed("duplicate session id in batch"));
            }
        }
        let mut slots: Vec<ClientSlot> = sessions
            .iter()
            .map(|(id, _)| ClientSlot::new(*id))
            .collect();
        let mut report = BatchReport::default();

        let outcome: Result<(), NetError> =
            with_executor(shards, PLACEMENT_SEED, |scope, mut injector, events| {
                // Announce every session before the first frame, so the
                // server can build all its halves (and speak first where
                // the protocol starts server-side) while we still write.
                for (id, _) in &sessions {
                    report.wire_bytes_out +=
                        write_record(&mut writer, &Record::Open { session: *id })?;
                }
                writer.flush()?;
                for (id, session) in sessions {
                    injector.submit(id, Party::Alice, session);
                }

                // The reader takes the injector: every server record is a
                // wake (deliver/close) plus, for control flow, an event
                // injected *before* the wake so the main loop always
                // learns the cause before the executor's consequence.
                let injector = Arc::new(Mutex::new(injector));
                let reader_thread = scope.spawn(move || client_read_loop(reader, injector));

                let mut fatal: Option<NetError> = None;
                let mut aborted = false;
                while slots.iter().any(|s| !s.settled || !s.local_done) {
                    let Some(first) = events.recv() else { break };
                    let mut next = Some(first);
                    while let Some(ev) = next {
                        handle_event(
                            ev,
                            &index,
                            &mut slots,
                            &mut writer,
                            &mut report,
                            &mut fatal,
                            &mut aborted,
                        );
                        next = events.try_recv();
                    }
                    if fatal.is_none() {
                        if let Err(e) = writer.flush() {
                            fatal = Some(e.into());
                        }
                    }
                    if aborted || fatal.is_some() {
                        break;
                    }
                }

                // Nothing more to say (or the transport died): close our
                // write half so the server's handler sees EOF, finishes,
                // and releases the connection — which in turn EOFs our
                // reader thread so the scope can join it. On a failure
                // shut both halves to unblock the reader immediately.
                writer.flush().ok();
                if fatal.is_some() || aborted {
                    writer.get_ref().shutdown(Shutdown::Both).ok();
                } else {
                    writer.get_ref().shutdown(Shutdown::Write).ok();
                }
                let (wire_bytes_in, frames_in, read_error) =
                    reader_thread.join().expect("client reader thread");
                report.wire_bytes_in = wire_bytes_in;
                report.frames_in = frames_in;
                if let Some(e) = fatal {
                    return Err(e);
                }
                if let Some(e) = read_error {
                    return Err(e);
                }
                Ok(())
            });
        outcome?;

        report.sessions = slots
            .into_iter()
            .map(|s| SessionReport {
                id: s.id,
                transcript: s.transcript,
                error: s.error,
            })
            .collect();
        Ok(report)
    }

    /// Runs `(session id, Alice session)` pairs as an **open-loop** load:
    /// the i-th session is injected at offset `schedule[i]` from the
    /// run's start regardless of how many earlier sessions are still in
    /// flight. The schedule must be non-decreasing and as long as the
    /// session list (build one with
    /// [`rsr-bench::loadgen`](crate::client) or by hand).
    ///
    /// Latency in the returned [`LoadReport`] is measured from the
    /// *scheduled* arrival, not the actual injection, so any lag the
    /// generator itself accumulates is charged to the measurement rather
    /// than silently forgiven (coordinated omission). The largest such
    /// lag is reported via [`LoadReport::max_inject_lag`].
    pub fn run_load<'s>(
        self,
        sessions: Vec<(u64, Box<dyn NetSession + 's>)>,
        schedule: &[Duration],
    ) -> Result<LoadReport, NetError> {
        let ReconClient {
            reader,
            mut writer,
            shards,
        } = self;
        if sessions.len() != schedule.len() {
            return Err(NetError::Malformed(
                "arrival schedule length must match session count",
            ));
        }
        if schedule.windows(2).any(|w| w[0] > w[1]) {
            return Err(NetError::Malformed(
                "arrival schedule must be non-decreasing",
            ));
        }
        let n = sessions.len();
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(n);
        for (pos, (id, _)) in sessions.iter().enumerate() {
            if index.insert(*id, pos).is_some() {
                return Err(NetError::Malformed("duplicate session id in batch"));
            }
        }
        let mut slots: Vec<ClientSlot> = sessions
            .iter()
            .map(|(id, _)| ClientSlot::new(*id))
            .collect();
        // Counters reuse the batch shape so `handle_event` is shared
        // verbatim between the closed-loop and open-loop drivers.
        let mut counters = BatchReport::default();
        let mut injected: Vec<Option<Duration>> = vec![None; n];
        let mut loop_end = Duration::ZERO;
        let mut t0 = Instant::now();

        let outcome: Result<(), NetError> =
            with_executor(shards, PLACEMENT_SEED, |scope, injector, events| {
                // The reader needs no sessions up front: the server only
                // speaks about a session after seeing its OPEN, and every
                // OPEN is written after that session's `submit` below, so
                // the reader never routes a frame for an unsubmitted id.
                let injector = Arc::new(Mutex::new(injector));
                let reader_injector = Arc::clone(&injector);
                let reader_thread = scope.spawn(move || client_read_loop(reader, reader_injector));
                let mut pending = sessions.into_iter();
                let mut next_up = 0usize;
                let mut fatal: Option<NetError> = None;
                let mut aborted = false;
                t0 = Instant::now();

                loop {
                    // Inject everything that is due. Submit *before*
                    // writing OPEN: were OPEN flushed first, the server
                    // could answer before the executor knows the id and
                    // the reader would treat the reply as fatal.
                    let mut burst = false;
                    while next_up < n && fatal.is_none() && t0.elapsed() >= schedule[next_up] {
                        let (id, session) = pending.next().expect("sessions match schedule");
                        injector
                            .lock()
                            .expect("injector lock")
                            .submit(id, Party::Alice, session);
                        match write_record(&mut writer, &Record::Open { session: id }) {
                            Ok(b) => counters.wire_bytes_out += b,
                            Err(e) => fatal = Some(e),
                        }
                        injected[next_up] = Some(t0.elapsed());
                        next_up += 1;
                        burst = true;
                    }
                    if burst && fatal.is_none() {
                        if let Err(e) = writer.flush() {
                            fatal = Some(e.into());
                        }
                    }
                    if aborted || fatal.is_some() {
                        break;
                    }
                    if next_up == n && slots.iter().all(|s| s.settled && s.local_done) {
                        break;
                    }

                    // Sleep until the next scheduled arrival (or forever
                    // once the schedule is drained), waking early for any
                    // executor event.
                    let timeout =
                        (next_up < n).then(|| schedule[next_up].saturating_sub(t0.elapsed()));
                    match events.next(timeout) {
                        Wait::Event(first) => {
                            let mut next_ev = Some(first);
                            while let Some(ev) = next_ev {
                                handle_event(
                                    ev,
                                    &index,
                                    &mut slots,
                                    &mut writer,
                                    &mut counters,
                                    &mut fatal,
                                    &mut aborted,
                                );
                                next_ev = events.try_recv();
                            }
                            if fatal.is_none() {
                                if let Err(e) = writer.flush() {
                                    fatal = Some(e.into());
                                }
                            }
                            if aborted || fatal.is_some() {
                                break;
                            }
                        }
                        Wait::Timeout => {}
                        Wait::Closed => break,
                    }
                }
                loop_end = t0.elapsed();

                // Shutdown mirrors `run_batch`: close our write half so
                // the server unwinds cleanly, both halves on failure so
                // the reader unblocks immediately.
                writer.flush().ok();
                if fatal.is_some() || aborted {
                    writer.get_ref().shutdown(Shutdown::Both).ok();
                } else {
                    writer.get_ref().shutdown(Shutdown::Write).ok();
                }
                let (wire_bytes_in, frames_in, read_error) =
                    reader_thread.join().expect("client reader thread");
                counters.wire_bytes_in = wire_bytes_in;
                counters.frames_in = frames_in;
                if let Some(e) = fatal {
                    return Err(e);
                }
                if let Some(e) = read_error {
                    return Err(e);
                }
                Ok(())
            });
        outcome?;

        let mut report = LoadReport {
            frames_out: counters.frames_out,
            frames_in: counters.frames_in,
            wire_bytes_out: counters.wire_bytes_out,
            wire_bytes_in: counters.wire_bytes_in,
            ..LoadReport::default()
        };
        report.sessions = slots
            .into_iter()
            .zip(schedule.iter().zip(injected))
            .map(|(slot, (scheduled, injected_at))| {
                let mut error = slot.error;
                if injected_at.is_none() {
                    error.get_or_insert_with(|| {
                        "load run ended before this session was injected".into()
                    });
                }
                LoadSessionReport {
                    id: slot.id,
                    scheduled: *scheduled,
                    injected: injected_at.unwrap_or(loop_end),
                    settled: slot.settled_at.map(|at| at.saturating_duration_since(t0)),
                    transcript: slot.transcript,
                    error,
                }
            })
            .collect();
        // The honest span: to the last settle when everything completed,
        // to the loop's end when anything failed or never settled.
        report.elapsed = if report.failed() == 0 {
            report
                .sessions
                .iter()
                .filter_map(|s| s.settled)
                .max()
                .unwrap_or(loop_end)
        } else {
            loop_end
        };
        Ok(report)
    }
}

/// Applies one executor event to the batch state.
fn handle_event(
    ev: ExecEvent,
    index: &HashMap<u64, usize>,
    slots: &mut [ClientSlot],
    writer: &mut BufWriter<TcpStream>,
    report: &mut BatchReport,
    fatal: &mut Option<NetError>,
    aborted: &mut bool,
) {
    match ev {
        // The local half produced a frame: put it on the wire.
        ExecEvent::Frame { id, frame } => {
            report.frames_out += 1;
            if fatal.is_none() {
                match write_record(writer, &Record::Frame { session: id, frame }) {
                    Ok(n) => report.wire_bytes_out += n,
                    Err(e) => *fatal = Some(e),
                }
            }
        }
        // The local half left the executor: collect its transcript; a
        // genuine local failure (not one relayed from a server DONE —
        // those arrive with `settled` already set) abandons the session
        // so a Bob blocked on this Alice cannot wedge the connection.
        ExecEvent::Done {
            id,
            transcript,
            error,
        } => {
            let slot = &mut slots[index[&id]];
            slot.local_done = true;
            slot.transcript = transcript;
            if let Some(e) = error {
                if !slot.settled && fatal.is_none() {
                    match write_record(
                        writer,
                        &Record::Done {
                            session: id,
                            status: STATUS_SESSION_ERROR,
                            message: e.clone(),
                        },
                    ) {
                        Ok(n) => report.wire_bytes_out += n,
                        Err(err) => *fatal = Some(err),
                    }
                    slot.settled = true;
                }
                slot.error.get_or_insert(e);
            }
            slot.note_progress();
        }
        // Executor shutdown caught the half still live: the connection
        // is gone and its `CODE_EOF`/`CODE_FATAL` cause was already
        // handled; just collect what crossed.
        ExecEvent::Stranded { id, transcript } => {
            let slot = &mut slots[index[&id]];
            slot.local_done = true;
            slot.transcript = transcript;
            slot.error
                .get_or_insert_with(|| "connection closed before session settled".into());
            slot.note_progress();
        }
        ExecEvent::Injected { id, code, note } => match code {
            CODE_EOF => {
                for slot in slots.iter_mut().filter(|s| !s.settled) {
                    slot.settled = true;
                    slot.error
                        .get_or_insert_with(|| "connection closed before session settled".into());
                    slot.note_progress();
                }
            }
            CODE_FATAL => *aborted = true,
            code => {
                let status = (code - CODE_SERVER_DONE) as u8;
                let slot = &mut slots[index[&id]];
                slot.settled = true;
                if status != STATUS_OK {
                    slot.error
                        .get_or_insert(format!("server status {status}: {note}"));
                }
                slot.note_progress();
            }
        },
    }
}

/// The reader thread: routes server records into the executor. Returns
/// `(wire bytes read, frames read, transport error)`; dropping the
/// injector on exit is what ultimately shuts the executor down.
fn client_read_loop(
    mut reader: BufReader<TcpStream>,
    injector: SharedInjector<'_>,
) -> (u64, usize, Option<NetError>) {
    let mut wire_bytes_in = 0u64;
    let mut frames_in = 0usize;
    loop {
        match read_record(&mut reader) {
            Ok(Some((record, n))) => {
                wire_bytes_in += n;
                // One lock per record: uncontended except against the
                // load generator's scheduled submits.
                let inj = injector.lock().expect("injector lock");
                match record {
                    Record::Open { .. } => {
                        inj.inject(0, CODE_FATAL, "server sent an open record");
                        return (
                            wire_bytes_in,
                            frames_in,
                            Some(NetError::Malformed("server sent an open record")),
                        );
                    }
                    Record::Frame { session: id, frame } => {
                        if inj.shard_of(id).is_none() {
                            inj.inject(0, CODE_FATAL, "record for an unknown session");
                            return (
                                wire_bytes_in,
                                frames_in,
                                Some(NetError::Malformed(
                                    "record for a session id not in the batch",
                                )),
                            );
                        }
                        frames_in += 1;
                        inj.deliver(id, frame);
                    }
                    Record::Done {
                        session: id,
                        status,
                        message,
                    } => {
                        if inj.shard_of(id).is_none() {
                            inj.inject(0, CODE_FATAL, "record for an unknown session");
                            return (
                                wire_bytes_in,
                                frames_in,
                                Some(NetError::Malformed(
                                    "record for a session id not in the batch",
                                )),
                            );
                        }
                        // Inject the cause first (the event stream is
                        // FIFO), then close the local half so it reports
                        // in even if it cannot finish on its own. The
                        // close is stale — a silent no-op — whenever the
                        // half already completed.
                        inj.inject(id, CODE_SERVER_DONE + status as u32, message.clone());
                        let reason = if status == STATUS_OK {
                            "server finished but the local session is incomplete".to_owned()
                        } else {
                            format!("server status {status}: {message}")
                        };
                        inj.close(id, reason);
                    }
                }
            }
            Ok(None) => {
                injector
                    .lock()
                    .expect("injector lock")
                    .inject(0, CODE_EOF, "");
                return (wire_bytes_in, frames_in, None);
            }
            Err(e) => {
                injector
                    .lock()
                    .expect("injector lock")
                    .inject(0, CODE_FATAL, e.to_string());
                return (wire_bytes_in, frames_in, Some(e));
            }
        }
    }
}
