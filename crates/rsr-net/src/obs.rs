//! Registry handles for the transport layer's metrics, resolved once.
//!
//! Both reactor loops (the server's in [`crate::reactor`], the client's
//! in [`crate::client`]) and the shared [`crate::reactor::ConnIo`]
//! record through these. Every record site is gated on
//! [`rsr_obs::enabled`], so with metrics off the transport pays one
//! relaxed load per site. Key inventory and semantics are documented in
//! docs/observability.md.

use rsr_obs::{Counter, Gauge};
use std::sync::{Arc, OnceLock};

pub(crate) struct NetMetrics {
    /// Server reactor loop iterations (`net_reactor_polls`).
    pub polls: Arc<Counter>,
    /// Poll returns with ≥ 1 readable connection
    /// (`net_reactor_wakes_readable`).
    pub wakes_readable: Arc<Counter>,
    /// Poll returns with ≥ 1 writable connection
    /// (`net_reactor_wakes_writable`).
    pub wakes_writable: Arc<Counter>,
    /// Poll returns with the listener ready (`net_reactor_wakes_accept`).
    pub wakes_accept: Arc<Counter>,
    /// Poll returns with no registered fd ready: the executor's waker
    /// fired or the idle-sweep timer expired — `poll(2)` cannot say
    /// which (`net_reactor_wakes_other`).
    pub wakes_other: Arc<Counter>,
    /// Client round-driver loop iterations (`net_client_polls`).
    pub client_polls: Arc<Counter>,
    /// Bytes read off sockets, both endpoints (`net_wire_bytes_in`).
    pub bytes_in: Arc<Counter>,
    /// Bytes the kernel accepted for write, both endpoints
    /// (`net_wire_bytes_out`). Trails the per-connection
    /// `wire_bytes_out` accounting, which counts at queue time.
    pub bytes_out: Arc<Counter>,
    /// Pending output-buffer bytes at queue time; its high-water mark is
    /// the backpressure indicator (`net_writebuf_bytes`).
    pub writebuf: Arc<Gauge>,
    /// Connections adopted by the server reactor, accepted or handed in
    /// (`net_conns_accepted`).
    pub conns_accepted: Arc<Counter>,
    /// Server connections currently being served (`net_conns_live`).
    pub conns_live: Arc<Gauge>,
    /// Connections torn down by the idle sweep (`net_conns_idle_closed`).
    pub conns_idle_closed: Arc<Counter>,
    /// Connections that died of a transport error, idle teardowns
    /// included (`net_conns_failed`).
    pub conns_failed: Arc<Counter>,
}

pub(crate) fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rsr_obs::global();
        NetMetrics {
            polls: reg.counter("net_reactor_polls"),
            wakes_readable: reg.counter("net_reactor_wakes_readable"),
            wakes_writable: reg.counter("net_reactor_wakes_writable"),
            wakes_accept: reg.counter("net_reactor_wakes_accept"),
            wakes_other: reg.counter("net_reactor_wakes_other"),
            client_polls: reg.counter("net_client_polls"),
            bytes_in: reg.counter("net_wire_bytes_in"),
            bytes_out: reg.counter("net_wire_bytes_out"),
            writebuf: reg.gauge("net_writebuf_bytes"),
            conns_accepted: reg.counter("net_conns_accepted"),
            conns_live: reg.gauge("net_conns_live"),
            conns_idle_closed: reg.counter("net_conns_idle_closed"),
            conns_failed: reg.counter("net_conns_failed"),
        }
    })
}
