//! Minimal, dependency-free stand-in for the slice of the `proptest` API
//! this workspace uses: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range and collection strategies,
//! `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace patches `proptest` to this crate by path.
//! Unlike the real crate there is no shrinking: each test runs a fixed
//! number of cases from a seed derived deterministically from the test
//! name, so failures reproduce across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Why a generated case did not run to completion. Assertion failures
/// panic (as in the real crate's default runner); this only models
/// explicit rejection via [`prop_assume!`] or `return Ok(())`.
#[derive(Clone, Copy, Debug)]
pub enum TestCaseError {
    Reject,
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the debug workspace suite fast
        // while still exercising each property across a spread of inputs.
        // Release builds (the dedicated CI job) run the full 256.
        let cases = if cfg!(debug_assertions) { 64 } else { 256 };
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(S0.0);
impl_strategy_tuple!(S0.0, S1.1);
impl_strategy_tuple!(S0.0, S1.1, S2.2);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of (up to) `size` distinct elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates are discarded, so cap the attempts in case the
            // element domain is smaller than the requested size.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * target + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `prop::…` paths as the real crate's prelude exposes them.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// FNV-1a over the test name: a stable per-test seed so failures
/// reproduce run-to-run without any environment dependence.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                // Bind each strategy once, under its argument's name; the
                // per-case `let` below shadows it with a generated value.
                $(let $arg = $strat;)*
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)*
                    // The body runs in a `Result`-returning closure, as in
                    // the real crate, so `prop_assume!` and `return Ok(())`
                    // can abandon a case without failing the test.
                    let mut __one_case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    let _ = __one_case();
                    let _ = __case;
                }
            }
        )*
    };
}

/// Abandon the current case (without failing) when its inputs don't
/// satisfy a precondition. Only valid inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs(delta: i64) -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(0..delta, 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -5i64..=5, n in 1usize..4) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in pairs(10).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 2);
        }

        #[test]
        fn btree_set_distinct(s in prop::collection::btree_set(0u64..1000, 3..8)) {
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }
}
