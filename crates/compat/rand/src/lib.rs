//! Minimal, dependency-free stand-in for the parts of the `rand` 0.8 API
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range` / `gen_bool`.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace patches `rand` to this crate by path. The
//! generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which the experiment harness relies on for reproducibility.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like `rand`'s
    /// `Standard` distribution for `f64`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampler for `[0, span)` via bitmask rejection.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // `next_power_of_two` would overflow for spans above 2^63.
    let mask = if span > 1 << 63 {
        u64::MAX
    } else {
        span.next_power_of_two() - 1
    };
    loop {
        let x = rng.next_u64() & mask;
        if x < span {
            return x;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span is computed in the unsigned counterpart: a
                // wrapping difference in $t followed by `as u64` would
                // sign-extend for signed types whose range exceeds the
                // positive half.
                let span = (self.end as $ut).wrapping_sub(self.start as $ut) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $ut).wrapping_sub(lo as $ut) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64, per Blackman & Vigna's
    /// recommendation. Statistically strong and fast; not cryptographic,
    /// which matches `rand`'s contract for a seeded `StdRng` closely
    /// enough for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..1000);
            assert!((0..1000).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_wide_signed_and_narrow_types() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            // Spans wider than the type's positive half must not
            // sign-extend into garbage.
            let a: i32 = rng.gen_range(-2_000_000_000i32..=2_000_000_000);
            assert!((-2_000_000_000..=2_000_000_000).contains(&a));
            let b: i8 = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = b; // full range: any value is valid

            // Span just above 2^63 must not overflow the mask in debug.
            let c: i64 = rng.gen_range(i64::MIN..2);
            assert!(c < 2);
            let d: u64 = rng.gen_range(0..=u64::MAX);
            let _ = d;
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
