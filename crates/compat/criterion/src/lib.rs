//! Minimal, dependency-free stand-in for the slice of the `criterion` API
//! this workspace's benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace patches `criterion` to this crate by path.
//! Measurement is intentionally simple — warm up, then time enough
//! iterations to fill a short window and report mean ns/iter — because CI
//! only compiles the benches (`cargo bench --no-run`); the numbers are for
//! quick local comparisons, not statistical rigour.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement window per benchmark; scaled down by `sample_size` requests
/// the way real criterion shortens heavyweight groups.
const TARGET_WINDOW: Duration = Duration::from_millis(200);

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, TARGET_WINDOW, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            window: TARGET_WINDOW,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Real criterion adjusts the statistical sample count; here it scales
    /// the measurement window so expensive groups stay quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.clamp(2, 100) as u32;
        self.window = TARGET_WINDOW * n / 100;
        self
    }

    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), self.window, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.label), self.window, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    window: Duration,
    mean_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed pass to warm caches and page in code.
        black_box(routine());

        // Estimate cost, then size the batch to fill the window.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.window.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u32;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, window: Duration, mut f: F) {
    let mut bencher = Bencher {
        window,
        mean_ns: None,
    };
    f(&mut bencher);
    match bencher.mean_ns {
        Some(ns) => println!("bench: {name:<48} {ns:>14.1} ns/iter"),
        None => println!("bench: {name:<48} (no measurement)"),
    }
}

/// Opaque value barrier, re-exported so benches may use either
/// `criterion::black_box` or `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; a plain
            // `--no-run`-compiled binary may also be invoked by hand with
            // filters we don't implement, so just ignore the arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo_direct", |b| b.iter(|| black_box(2u64).pow(10)));
        let mut group = c.benchmark_group("demo_group");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter(|| black_box(n) + 2)
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
