//! A minimal readiness shim for nonblocking sockets: `poll(2)` plus a
//! self-pipe waker, with no dependencies outside `std`.
//!
//! The build environment has no crates.io access, so the usual readiness
//! crates (`mio`, `polling`) are out of reach; this stand-in covers the
//! narrow slice `rsr-net`'s reactor needs:
//!
//! * [`PollFd`] — one registered descriptor with an interest set,
//!   `#[repr(C)]`-compatible with the platform's `struct pollfd` so the
//!   slice can be handed to `poll(2)` directly.
//! * [`Poller`] — owns the wakeup pipe and makes the `poll(2)` call;
//!   [`Poller::wait`] blocks until a registered descriptor is ready, the
//!   timeout elapses, or a [`Waker`] fires from another thread.
//! * [`Waker`] — cloneable, `Send + Sync` handle that interrupts a
//!   concurrent (or the next) [`Poller::wait`]. Writes one byte down a
//!   pipe registered alongside the caller's descriptors; an atomic flag
//!   dedupes bursts so the pipe never accumulates more than one byte.
//!
//! On Unix this is the real `poll(2)` via a direct `extern "C"`
//! declaration (the symbol lives in the platform libc every Rust binary
//! already links; no `libc` crate needed). On other platforms the
//! fallback is a bounded sleep that reports every descriptor ready —
//! level-triggered emulation that is correct (callers must handle
//! `WouldBlock` anyway) but burns a syscall per millisecond; the only
//! tier-1 target is Linux.
//!
//! ```
//! use netpoll::{Poller, PollFd};
//! use std::time::Duration;
//!
//! let (mut poller, waker) = Poller::new().unwrap();
//! let handle = std::thread::spawn(move || waker.wake());
//! // No descriptors registered: only the waker can end the wait early.
//! let n = poller.wait(&mut [], Some(Duration::from_secs(5))).unwrap();
//! assert_eq!(n, 0); // the waker readiness is internal, not counted
//! handle.join().unwrap();
//! ```

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Interest / readiness: data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Interest / readiness: data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Readiness only: the descriptor is in an error state.
pub const POLLERR: i16 = 0x008;
/// Readiness only: the peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Readiness only: the descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

/// One registered descriptor: layout-identical to the platform
/// `struct pollfd` (fd, events, revents — all that `poll(2)` defines).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Registers `fd` with an interest mask built from [`POLLIN`] and/or
    /// [`POLLOUT`].
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The registered descriptor.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Readable — or hung up / errored, which a reader must also observe
    /// (the read will return 0 or the error).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Writable — or errored, which the write will surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Any readiness at all.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

/// The descriptor of a `TcpStream`, for registering it in a [`PollFd`].
/// (Platform gating lives here so callers stay cfg-free; the non-Unix
/// fallback returns `-1`, which its emulated wait never inspects.)
pub fn stream_fd(stream: &std::net::TcpStream) -> i32 {
    #[cfg(unix)]
    {
        std::os::fd::AsRawFd::as_raw_fd(stream)
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// The descriptor of a `TcpListener` — see [`stream_fd`].
pub fn listener_fd(listener: &std::net::TcpListener) -> i32 {
    #[cfg(unix)]
    {
        std::os::fd::AsRawFd::as_raw_fd(listener)
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        -1
    }
}

/// Interrupts a [`Poller::wait`] from any thread. Cloneable; all clones
/// feed the same poller.
#[derive(Clone)]
pub struct Waker {
    shared: Arc<WakeShared>,
}

struct WakeShared {
    /// True while a wake is pending (written but not yet drained); gates
    /// the pipe write so bursts of wakes cost one byte, not one each.
    signaled: AtomicBool,
    #[cfg(unix)]
    writer: std::io::PipeWriter,
}

impl Waker {
    /// Makes the poller's current (or next) [`Poller::wait`] return
    /// promptly. Cheap when a wake is already pending: one atomic swap.
    pub fn wake(&self) {
        if !self.shared.signaled.swap(true, Ordering::AcqRel) {
            #[cfg(unix)]
            {
                use std::io::Write;
                let _ = (&self.shared.writer).write(&[1u8]);
            }
        }
    }
}

/// Owns the wakeup channel and performs the blocking wait.
pub struct Poller {
    shared: Arc<WakeShared>,
    #[cfg(unix)]
    reader: std::io::PipeReader,
    /// Scratch: caller fds + the waker pipe, handed to `poll(2)`.
    #[cfg(unix)]
    scratch: Vec<PollFd>,
}

impl Poller {
    /// A poller and its waker handle.
    pub fn new() -> io::Result<(Poller, Waker)> {
        #[cfg(unix)]
        {
            let (reader, writer) = std::io::pipe()?;
            let shared = Arc::new(WakeShared {
                signaled: AtomicBool::new(false),
                writer,
            });
            let waker = Waker {
                shared: Arc::clone(&shared),
            };
            Ok((
                Poller {
                    shared,
                    reader,
                    scratch: Vec::new(),
                },
                waker,
            ))
        }
        #[cfg(not(unix))]
        {
            let shared = Arc::new(WakeShared {
                signaled: AtomicBool::new(false),
            });
            let waker = Waker {
                shared: Arc::clone(&shared),
            };
            Ok((Poller { shared }, waker))
        }
    }

    /// Blocks until at least one of `fds` is ready, the [`Waker`] fires,
    /// or `timeout` elapses (`None` = no limit). Fills in each entry's
    /// readiness and returns how many of the *caller's* descriptors are
    /// ready — a bare waker interruption returns `Ok(0)` with no entry
    /// marked, so callers distinguish "new work was signaled" (re-check
    /// queues) from descriptor readiness by the entries themselves.
    pub fn wait(&mut self, fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        #[cfg(unix)]
        {
            self.wait_unix(fds, timeout)
        }
        #[cfg(not(unix))]
        {
            self.wait_fallback(fds, timeout)
        }
    }

    #[cfg(unix)]
    fn wait_unix(&mut self, fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        use std::io::Read;
        use std::os::fd::AsRawFd;

        // A wake that arrived since the last drain means pending work:
        // don't block at all, just collect instantaneous readiness.
        let timeout = if self.shared.signaled.load(Ordering::Acquire) {
            Some(Duration::ZERO)
        } else {
            timeout
        };

        self.scratch.clear();
        for fd in fds.iter() {
            let mut entry = *fd;
            entry.revents = 0;
            self.scratch.push(entry);
        }
        self.scratch
            .push(PollFd::new(self.reader.as_raw_fd(), POLLIN));

        loop {
            let ms = match timeout {
                None => -1i32,
                // Round up so a sub-millisecond deadline sleeps one tick
                // instead of degenerating into a zero-timeout spin.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let rc = unsafe {
                sys::poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as sys::NfdsT,
                    ms,
                )
            };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the original timeout (a rare, bounded
            // over-wait beats tracking a deadline here).
        }

        // Drain the waker *before* clearing the flag: a wake landing in
        // between skips its write (flag still set) but its cause is
        // already queued, and the caller re-checks queues after every
        // wait. The reverse order could leave the flag set with an empty
        // pipe — a permanently lost wakeup.
        let waker_entry = self.scratch.last().expect("waker entry pushed above");
        if waker_entry.readable() {
            let mut sink = [0u8; 16];
            let _ = self.reader.read(&mut sink);
            self.shared.signaled.store(false, Ordering::Release);
        } else {
            // Zero-timeout pass for a pending wake whose byte had not
            // landed yet: clear the flag anyway — the caller re-checks
            // its queues after every wait, and the straggling byte only
            // costs one spurious (immediately drained) wakeup later.
            self.shared.signaled.store(false, Ordering::Release);
        }

        let mut ready = 0;
        for (dst, src) in fds.iter_mut().zip(self.scratch.iter()) {
            dst.revents = src.revents;
            if dst.ready() {
                ready += 1;
            }
        }
        Ok(ready)
    }

    #[cfg(not(unix))]
    fn wait_fallback(
        &mut self,
        fds: &mut [PollFd],
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        // No readiness API: sleep a bounded tick (cut short only by the
        // deadline), then conservatively report everything ready —
        // callers treat WouldBlock as "not actually ready".
        const TICK: Duration = Duration::from_millis(1);
        if !self.shared.signaled.swap(false, Ordering::AcqRel) {
            std::thread::sleep(timeout.unwrap_or(TICK).min(TICK));
            self.shared.signaled.store(false, Ordering::Release);
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::os::raw::c_int;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub type NfdsT = std::os::raw::c_uint;

    extern "C" {
        /// `poll(2)` from the platform libc (already linked into every
        /// Rust binary); [`PollFd`] is `#[repr(C)]`-identical to the
        /// platform's `struct pollfd`.
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn timeout_elapses_without_activity() {
        let (mut poller, _waker) = Poller::new().unwrap();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut [], Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let (mut poller, waker) = Poller::new().unwrap();
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let n = poller.wait(&mut [], Some(Duration::from_secs(10))).unwrap();
        handle.join().unwrap();
        assert_eq!(n, 0, "waker readiness is internal");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "wait should return well before the timeout"
        );
    }

    #[test]
    fn pending_wake_makes_the_next_wait_immediate() {
        let (mut poller, waker) = Poller::new().unwrap();
        waker.wake();
        waker.wake(); // dedupe: still one byte in the pipe
        let t0 = Instant::now();
        poller.wait(&mut [], Some(Duration::from_secs(10))).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1));
        // Drained: the following wait must block for its full timeout.
        let t0 = Instant::now();
        poller
            .wait(&mut [], Some(Duration::from_millis(30)))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn socket_readiness_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let (mut poller, _waker) = Poller::new().unwrap();
        let mut fds = [PollFd::new(stream_fd(&server), POLLIN)];
        // Nothing written yet: not readable within a short wait.
        let n = poller
            .wait(&mut fds, Some(Duration::from_millis(10)))
            .unwrap();
        if cfg!(unix) {
            assert_eq!(n, 0);
            assert!(!fds[0].readable());
        }

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = poller
            .wait(&mut fds, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn hangup_counts_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);

        let (mut poller, _waker) = Poller::new().unwrap();
        let mut fds = [PollFd::new(stream_fd(&server), POLLIN)];
        let n = poller
            .wait(&mut fds, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable(), "EOF must surface as read-readiness");
    }
}
