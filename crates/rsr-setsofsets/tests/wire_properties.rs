//! Property tests for the sets-of-sets round codecs: random parent
//! multisets, every round message round-trips byte-exactly and the
//! reported round bits equal the measured encoder output.

use proptest::prelude::*;
use rsr_iblt::bits::{BitReader, BitWriter};
use rsr_setsofsets::protocol::{alice_round2, bob_round1, bob_round3};
use rsr_setsofsets::{estimate_fp_cells, reconcile, wire, ChildSet, SosConfig};

fn children(max_parents: usize, entry_cap: u64) -> impl Strategy<Value = Vec<ChildSet>> {
    prop::collection::vec(prop::collection::vec(0u64..entry_cap, 1..6), 0..max_parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round 1 round-trips: the reconstructed fingerprint IBLT drives
    /// Alice's round 2 to the identical request list.
    #[test]
    fn round1_roundtrip(
        seed in 0u64..1000,
        alice in children(12, 1 << 24),
        bob in children(12, 1 << 24),
    ) {
        let cfg = SosConfig {
            fp_cells: estimate_fp_cells(alice.len() + bob.len()),
            q: 3,
            seed,
            entry_bits: 24,
        };
        let r1 = bob_round1(&bob, &cfg);
        let mut w = BitWriter::new();
        wire::put_round1(&mut w, &r1);
        prop_assert_eq!(w.bit_len(), wire::round1_wire_bits(&r1));
        let buf = w.finish();
        prop_assert_eq!(buf.len() as u64, wire::round1_wire_bits(&r1).div_ceil(8));
        let back = wire::get_round1(&mut BitReader::new(&buf), &cfg).expect("decodes");
        let direct = alice_round2(&alice, &r1, &cfg);
        let via_wire = alice_round2(&alice, &back, &cfg);
        match (direct, via_wire) {
            (Ok((a, _)), Ok((b, _))) => {
                prop_assert_eq!(a.num_requested(), b.num_requested());
                let mut wa = BitWriter::new();
                wire::put_round2(&mut wa, &a);
                let mut wb = BitWriter::new();
                wire::put_round2(&mut wb, &b);
                prop_assert_eq!(wa.finish(), wb.finish());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "round-1 serialization changed the outcome"),
        }
    }

    /// Rounds 2 and 3 round-trip byte-exactly through a full protocol
    /// exchange, and the measured sizes match the accounting helpers.
    #[test]
    fn round2_and_round3_roundtrip(
        seed in 0u64..1000,
        shared in children(10, 1 << 24),
        bob_extra in children(6, 1 << 24),
    ) {
        let alice = shared.clone();
        let mut bob = shared;
        bob.extend(bob_extra);
        let cfg = SosConfig {
            fp_cells: estimate_fp_cells(bob.len() + 4),
            q: 3,
            seed,
            entry_bits: 24,
        };
        let r1 = bob_round1(&bob, &cfg);
        let Ok((r2, _)) = alice_round2(&alice, &r1, &cfg) else {
            return Ok(()); // fingerprint table overloaded: sizing, not codec
        };
        let mut w = BitWriter::new();
        wire::put_round2(&mut w, &r2);
        prop_assert_eq!(w.bit_len(), wire::round2_wire_bits(&r2));
        let buf = w.finish();
        let r2_back = wire::get_round2(&mut BitReader::new(&buf)).expect("decodes");
        let mut w2 = BitWriter::new();
        wire::put_round2(&mut w2, &r2_back);
        prop_assert_eq!(w2.finish(), buf);

        let r3 = bob_round3(&bob, &r2_back, &cfg).expect("requests are honest");
        let mut w3 = BitWriter::new();
        wire::put_round3(&mut w3, &r3, &cfg);
        prop_assert_eq!(w3.bit_len(), wire::round3_wire_bits(&r3, &cfg));
        let buf3 = w3.finish();
        let r3_back = wire::get_round3(&mut BitReader::new(&buf3)).expect("decodes");
        let mut w3b = BitWriter::new();
        wire::put_round3(&mut w3b, &r3_back, &cfg);
        prop_assert_eq!(w3b.finish(), buf3);
    }

    /// `reconcile`'s reported round bits are the measured encoder sizes —
    /// in particular the total can never be smaller than the payload the
    /// rounds must carry.
    #[test]
    fn reconcile_round_bits_are_measured(
        seed in 0u64..500,
        shared in children(10, 1 << 20),
        bob_extra in children(4, 1 << 20),
    ) {
        let alice = shared.clone();
        let mut bob = shared;
        bob.extend(bob_extra.clone());
        let cfg = SosConfig {
            fp_cells: estimate_fp_cells(bob.len() + 4),
            q: 3,
            seed,
            entry_bits: 20,
        };
        let Ok(out) = reconcile(&alice, &bob, &cfg) else {
            return Ok(());
        };
        // Round 1 ships the IBLT (+ 32-bit count header).
        prop_assert!(out.round_bits.0 > 32);
        // Round 2 carries one 64-bit fingerprint per Bob-only child.
        prop_assert_eq!(
            out.round_bits.1,
            32 + 64 * out.bob_only_children.len() as u64
        );
        // Round 3 carries at least every entry of every shipped child.
        let entry_payload: u64 = out
            .bob_only_children
            .iter()
            .map(|c| c.len() as u64 * u64::from(cfg.entry_bits))
            .sum();
        prop_assert!(out.round_bits.2 >= 40 + entry_payload);
        prop_assert_eq!(
            out.total_bits(),
            out.round_bits.0 + out.round_bits.1 + out.round_bits.2
        );
    }
}
