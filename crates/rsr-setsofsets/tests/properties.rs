//! Property-based tests: the sets-of-sets protocol is a faithful multiset
//! reconciliation for every input shape within its sizing.

use proptest::prelude::*;
use rsr_setsofsets::{reconcile, ChildSet, SosConfig};

fn cfg(fp_cells: usize, seed: u64) -> SosConfig {
    SosConfig {
        fp_cells,
        q: 3,
        seed,
        entry_bits: 24,
    }
}

fn sorted(mut v: Vec<ChildSet>) -> Vec<ChildSet> {
    v.sort();
    v
}

proptest! {
    /// Alice's reconstruction equals Bob's multiset exactly, for arbitrary
    /// multisets (duplicates included) within the table sizing.
    #[test]
    fn reconstruction_is_exact(
        seed in 0u64..500,
        alice in prop::collection::vec(prop::collection::vec(0u64..50, 1..4), 0..12),
        bob in prop::collection::vec(prop::collection::vec(0u64..50, 1..4), 0..12),
    ) {
        // Oversize the table: correctness, not sizing, is under test.
        let out = match reconcile(&alice, &bob, &cfg(256, seed)) {
            Ok(out) => out,
            Err(_) => return Ok(()), // decode failure is allowed, never wrong output
        };
        prop_assert_eq!(sorted(out.bob_multiset), sorted(bob));
    }

    /// Shipping is one-sided: everything in round 3 is a child Bob holds.
    #[test]
    fn shipped_children_are_bobs(
        seed in 0u64..500,
        shared in prop::collection::vec(prop::collection::vec(0u64..90, 2..4), 0..10),
        extra in prop::collection::vec(prop::collection::vec(100u64..200, 2..4), 0..6),
    ) {
        let alice = shared.clone();
        let mut bob = shared;
        bob.extend(extra);
        let out = match reconcile(&alice, &bob, &cfg(256, seed)) {
            Ok(out) => out,
            Err(_) => return Ok(()),
        };
        for child in &out.bob_only_children {
            prop_assert!(bob.contains(child), "shipped child Bob never had");
        }
    }

    /// Identical multisets never ship content and never remove anything.
    #[test]
    fn identical_multisets_are_noop(
        seed in 0u64..500,
        sets in prop::collection::vec(prop::collection::vec(0u64..100, 1..5), 0..15),
    ) {
        let out = reconcile(&sets, &sets, &cfg(128, seed)).expect("zero diff always decodes");
        prop_assert!(out.bob_only_children.is_empty());
        prop_assert_eq!(out.alice_only_count, 0);
        prop_assert_eq!(sorted(out.bob_multiset), sorted(sets));
        // Round 2 and 3 are then (near-)empty: only framing bits.
        prop_assert!(out.round_bits.1 <= 40);
        prop_assert!(out.round_bits.2 <= 40);
    }

    /// Total bits decompose as the sum of the three rounds.
    #[test]
    fn round_bits_sum(
        seed in 0u64..200,
        alice in prop::collection::vec(prop::collection::vec(0u64..30, 1..3), 0..8),
        bob in prop::collection::vec(prop::collection::vec(0u64..30, 1..3), 0..8),
    ) {
        if let Ok(out) = reconcile(&alice, &bob, &cfg(256, seed)) {
            prop_assert_eq!(
                out.total_bits(),
                out.round_bits.0 + out.round_bits.1 + out.round_bits.2
            );
        }
    }
}
