//! Sets-of-sets reconciliation (the substrate behind the Gap protocol).
//!
//! In the multisets-of-sets reconciliation problem (Mitzenmacher & Morgan,
//! PODS 2018 — reference \[22\] of the paper), Alice and Bob each hold a
//! parent multiset of child sets, and Bob wants Alice to end up knowing his
//! multiset, with communication proportional to the number of *differing
//! child sets* rather than the parent size. The Gap Guarantee protocol
//! (§4.1) invokes this with child sets = LSH-derived keys.
//!
//! ## Protocol (3 rounds, Bob → Alice)
//!
//! 1. **Bob → Alice**: an IBLT over *occurrence-tagged fingerprints* of his
//!    child sets. (Tagging the `r`-th occurrence of an identical child set
//!    with its rank `r` makes duplicate children distinct IBLT keys, so
//!    multiset semantics come out of a plain IBLT.)
//! 2. **Alice → Bob**: Alice subtracts her own tagged fingerprints and
//!    decodes the difference; she sends back the list of fingerprints only
//!    Bob has.
//! 3. **Bob → Alice**: the full contents of exactly those child sets.
//!
//! Alice then splices: her multiset, minus her Alice-only children, plus
//! the received Bob-only children, reproduces Bob's multiset exactly. Every
//! received child is verified against its requested fingerprint.
//!
//! ## Relation to Theorem E.1 (documented substitution)
//!
//! The PODS'18 protocol transmits only the *differing entries* of differing
//! child sets, which saves roughly a `log n / log log n` factor on large
//! child sets. We transmit whole differing child sets (simpler, and
//! bit-accounted honestly). The communication remains
//! `O(#differing children · (child size + log n))`, preserving every
//! qualitative claim the Gap experiments test: proportionality to the
//! number of differences, independence from the parent-set size, and the
//! 3-round structure. See DESIGN.md §2.

pub mod protocol;
pub mod wire;

pub use protocol::{
    estimate_fp_cells, reconcile, AliceState, ChildSet, Round1, Round2, Round3, SosConfig,
    SosError, SosOutcome,
};
