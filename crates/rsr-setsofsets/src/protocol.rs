//! The three-round sets-of-sets reconciliation protocol.

use rsr_hash::mix::hash_words;
use rsr_iblt::Iblt;
use std::collections::HashMap;
use std::fmt;

/// A child set: a fixed-shape vector of 64-bit entries. (The Gap protocol's
/// keys are vectors of `h` batch hashes; a plain set can be encoded by
/// sorting its elements.)
pub type ChildSet = Vec<u64>;

/// Configuration shared by both parties (public coins).
#[derive(Clone, Copy, Debug)]
pub struct SosConfig {
    /// Cells in the round-1 fingerprint IBLT. Size with
    /// [`estimate_fp_cells`] from the expected number of differing
    /// children.
    pub fp_cells: usize,
    /// Hash functions per IBLT key.
    pub q: usize,
    /// Shared seed.
    pub seed: u64,
    /// Bits charged per child-set entry on the wire (the Gap protocol's
    /// entries are `Θ(log n)`-bit batch hashes).
    pub entry_bits: u32,
}

/// Sizing rule for the fingerprint IBLT: the q=3 peeling threshold is at
/// density ≈ 0.81, so `2.5×` the expected number of differing children
/// (min 24 cells) gives comfortable slack.
pub fn estimate_fp_cells(expected_diffs: usize) -> usize {
    (5 * expected_diffs.max(1)).div_ceil(2).max(24)
}

/// Errors the protocol can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SosError {
    /// The fingerprint IBLT did not decode: the difference exceeded the
    /// table capacity. Re-run with a larger `fp_cells`.
    FingerprintDecodeFailed,
    /// A round-3 child set did not hash to its requested fingerprint.
    ContentVerificationFailed,
    /// Bob could not find a child matching a requested fingerprint (can
    /// only happen if the rounds were mismatched across configs).
    UnknownFingerprint,
}

impl fmt::Display for SosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SosError::FingerprintDecodeFailed => {
                write!(f, "fingerprint IBLT decode failed (difference too large)")
            }
            SosError::ContentVerificationFailed => {
                write!(f, "received child set fails fingerprint verification")
            }
            SosError::UnknownFingerprint => write!(f, "requested fingerprint unknown to sender"),
        }
    }
}

impl std::error::Error for SosError {}

/// Round-1 message (Bob → Alice).
#[derive(Clone, Debug)]
pub struct Round1 {
    pub(crate) iblt: Iblt,
    pub(crate) num_children: usize,
}

/// Round-2 message (Alice → Bob): tagged fingerprints only Bob has.
#[derive(Clone, Debug)]
pub struct Round2 {
    pub(crate) requested: Vec<u64>,
}

impl Round2 {
    /// Number of requested children (sizes Bob's round-3 reply).
    pub fn num_requested(&self) -> usize {
        self.requested.len()
    }
}

/// Round-3 message (Bob → Alice): contents of the requested children.
#[derive(Clone, Debug)]
pub struct Round3 {
    /// `(tagged fingerprint, child contents)` pairs.
    pub(crate) children: Vec<(u64, ChildSet)>,
}

/// Alice's state between rounds 2 and the finish.
#[derive(Clone, Debug)]
pub struct AliceState {
    /// Tagged fingerprints present only on Alice's side.
    pub alice_only: Vec<u64>,
    /// Tagged fingerprints present only on Bob's side (requested).
    pub bob_only: Vec<u64>,
}

/// Final outcome: Alice's reconstruction of Bob's multiset plus accounting.
#[derive(Clone, Debug)]
pub struct SosOutcome {
    /// Bob's parent multiset as reconstructed by Alice (order-insensitive).
    pub bob_multiset: Vec<ChildSet>,
    /// Children that only Bob had (what round 3 shipped).
    pub bob_only_children: Vec<ChildSet>,
    /// Number of Alice-only children removed during splicing.
    pub alice_only_count: usize,
    /// Bits sent in each round `(r1, r2, r3)`.
    pub round_bits: (u64, u64, u64),
}

impl SosOutcome {
    /// Total communication in bits across all rounds.
    pub fn total_bits(&self) -> u64 {
        self.round_bits.0 + self.round_bits.1 + self.round_bits.2
    }
}

/// Plain (untagged) fingerprint of a child set.
fn fingerprint(seed: u64, child: &ChildSet) -> u64 {
    hash_words(seed ^ 0x50f5_0f50, child)
}

/// Occurrence-tagged fingerprints: the `r`-th copy of an identical child
/// gets tag `r`, making duplicates distinct IBLT keys while keeping the
/// tagging consistent across parties.
fn tagged_fingerprints(seed: u64, children: &[ChildSet]) -> Vec<u64> {
    let mut ranks: HashMap<u64, u64> = HashMap::with_capacity(children.len());
    children
        .iter()
        .map(|c| {
            let fp = fingerprint(seed, c);
            let rank = ranks.entry(fp).or_insert(0);
            let tagged = hash_words(seed ^ 0x7a66_ed00, &[fp, *rank]);
            *rank += 1;
            tagged
        })
        .collect()
}

/// Round 1: Bob summarizes his tagged fingerprints in an IBLT.
pub fn bob_round1(bob: &[ChildSet], cfg: &SosConfig) -> Round1 {
    let mut iblt = Iblt::new(
        cfg.fp_cells,
        cfg.q,
        cfg.seed ^ crate::wire::FP_IBLT_SEED_TWEAK,
    );
    for tfp in tagged_fingerprints(cfg.seed, bob) {
        iblt.insert(tfp);
    }
    Round1 {
        iblt,
        num_children: bob.len(),
    }
}

/// Round 2: Alice subtracts her fingerprints, decodes the difference, and
/// requests Bob-only children.
pub fn alice_round2(
    alice: &[ChildSet],
    r1: &Round1,
    cfg: &SosConfig,
) -> Result<(Round2, AliceState), SosError> {
    let mut table = r1.iblt.clone();
    for tfp in tagged_fingerprints(cfg.seed, alice) {
        table.delete(tfp);
    }
    let decode = table.decode();
    if !decode.complete {
        return Err(SosError::FingerprintDecodeFailed);
    }
    // Bob inserted, Alice deleted: Bob-only survive positive.
    let state = AliceState {
        alice_only: decode.deleted,
        bob_only: decode.inserted.clone(),
    };
    Ok((
        Round2 {
            requested: decode.inserted,
        },
        state,
    ))
}

/// Round 3: Bob ships the contents of the requested children.
pub fn bob_round3(bob: &[ChildSet], r2: &Round2, cfg: &SosConfig) -> Result<Round3, SosError> {
    let tagged = tagged_fingerprints(cfg.seed, bob);
    let index: HashMap<u64, usize> = tagged
        .iter()
        .enumerate()
        .map(|(i, &tfp)| (tfp, i))
        .collect();
    let mut children = Vec::with_capacity(r2.requested.len());
    for &tfp in &r2.requested {
        let &i = index.get(&tfp).ok_or(SosError::UnknownFingerprint)?;
        children.push((tfp, bob[i].clone()));
    }
    Ok(Round3 { children })
}

/// Finish: Alice splices her multiset into Bob's.
pub fn alice_finish(
    alice: &[ChildSet],
    state: &AliceState,
    r3: &Round3,
    cfg: &SosConfig,
) -> Result<Vec<ChildSet>, SosError> {
    // Verify every received child against its fingerprint (the tag is a
    // hash of (fp, rank); recompute over all plausible ranks is
    // unnecessary — rank 0..len suffices since ranks are dense).
    for (tfp, child) in &r3.children {
        let fp = fingerprint(cfg.seed, child);
        let ok = (0..r3.children.len() as u64 + alice.len() as u64 + 1)
            .any(|r| hash_words(cfg.seed ^ 0x7a66_ed00, &[fp, r]) == *tfp);
        if !ok {
            return Err(SosError::ContentVerificationFailed);
        }
    }
    // Remove Alice-only children (by tagged fingerprint), keep the rest,
    // add Bob-only contents.
    let tagged = tagged_fingerprints(cfg.seed, alice);
    let alice_only: std::collections::HashSet<u64> = state.alice_only.iter().copied().collect();
    let mut result: Vec<ChildSet> = alice
        .iter()
        .zip(&tagged)
        .filter(|(_, tfp)| !alice_only.contains(tfp))
        .map(|(c, _)| c.clone())
        .collect();
    result.extend(r3.children.iter().map(|(_, c)| c.clone()));
    Ok(result)
}

/// Runs the full 3-round protocol and accounts communication.
///
/// The per-round bit counts are *measured*: each round message is encoded
/// through [`crate::wire`] and the encoder's exact bit length is reported,
/// so the accounting cannot drift from the bytes a transport would carry.
pub fn reconcile(
    alice: &[ChildSet],
    bob: &[ChildSet],
    cfg: &SosConfig,
) -> Result<SosOutcome, SosError> {
    let r1 = bob_round1(bob, cfg);
    let r1_bits = crate::wire::round1_wire_bits(&r1);
    let (r2, state) = alice_round2(alice, &r1, cfg)?;
    let r2_bits = crate::wire::round2_wire_bits(&r2);
    let r3 = bob_round3(bob, &r2, cfg)?;
    let r3_bits = crate::wire::round3_wire_bits(&r3, cfg);
    let bob_multiset = alice_finish(alice, &state, &r3, cfg)?;
    Ok(SosOutcome {
        bob_multiset,
        bob_only_children: r3.children.iter().map(|(_, c)| c.clone()).collect(),
        alice_only_count: state.alice_only.len(),
        round_bits: (r1_bits, r2_bits, r3_bits),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fp_cells: usize) -> SosConfig {
        SosConfig {
            fp_cells,
            q: 3,
            seed: 0xABCD,
            entry_bits: 32,
        }
    }

    fn sorted(mut v: Vec<ChildSet>) -> Vec<ChildSet> {
        v.sort();
        v
    }

    #[test]
    fn identical_multisets_need_no_round3_content() {
        let sets: Vec<ChildSet> = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let out = reconcile(&sets, &sets, &cfg(30)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(sets));
        assert!(out.bob_only_children.is_empty());
        assert_eq!(out.alice_only_count, 0);
    }

    #[test]
    fn bob_only_child_is_recovered() {
        let alice: Vec<ChildSet> = vec![vec![1, 2], vec![3, 4]];
        let bob: Vec<ChildSet> = vec![vec![1, 2], vec![3, 4], vec![9, 9]];
        let out = reconcile(&alice, &bob, &cfg(30)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
        assert_eq!(out.bob_only_children, vec![vec![9, 9]]);
    }

    #[test]
    fn alice_only_child_is_dropped() {
        let alice: Vec<ChildSet> = vec![vec![1, 2], vec![7, 7]];
        let bob: Vec<ChildSet> = vec![vec![1, 2]];
        let out = reconcile(&alice, &bob, &cfg(30)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
        assert_eq!(out.alice_only_count, 1);
    }

    #[test]
    fn multiset_multiplicities_are_respected() {
        // Alice has 1 copy of [5,5], Bob has 3.
        let alice: Vec<ChildSet> = vec![vec![5, 5], vec![1, 1]];
        let bob: Vec<ChildSet> = vec![vec![5, 5], vec![5, 5], vec![5, 5], vec![1, 1]];
        let out = reconcile(&alice, &bob, &cfg(40)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
        assert_eq!(out.bob_only_children.len(), 2); // two extra copies shipped
    }

    #[test]
    fn multiplicity_decrease() {
        let alice: Vec<ChildSet> = vec![vec![5, 5], vec![5, 5], vec![1, 1]];
        let bob: Vec<ChildSet> = vec![vec![5, 5], vec![1, 1]];
        let out = reconcile(&alice, &bob, &cfg(40)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
        assert_eq!(out.alice_only_count, 1);
    }

    #[test]
    fn communication_scales_with_differences_not_size() {
        // Same number of differences, 10× the parent size → round-3 bits
        // unchanged; round-1 bits depend only on fp_cells.
        let shared_small: Vec<ChildSet> = (0..20u64).map(|i| vec![i, i + 1]).collect();
        let shared_big: Vec<ChildSet> = (0..200u64).map(|i| vec![i, i + 1]).collect();
        let extra: Vec<ChildSet> = vec![vec![999, 999], vec![888, 888]];

        let mk = |shared: &[ChildSet]| {
            let alice = shared.to_vec();
            let mut bob = shared.to_vec();
            bob.extend(extra.clone());
            reconcile(&alice, &bob, &cfg(30)).unwrap()
        };
        let small = mk(&shared_small);
        let big = mk(&shared_big);
        assert_eq!(small.round_bits.2, big.round_bits.2);
        // Round 1 grows only by the log-factor in the per-cell count width.
        let ratio = big.round_bits.0 as f64 / small.round_bits.0 as f64;
        assert!(
            ratio < 1.15,
            "round-1 bits grew superlogarithmically: {ratio}"
        );
    }

    #[test]
    fn overloaded_fingerprint_table_reports_failure() {
        let alice: Vec<ChildSet> = Vec::new();
        let bob: Vec<ChildSet> = (0..500u64).map(|i| vec![i]).collect();
        let err = reconcile(&alice, &bob, &cfg(24)).unwrap_err();
        assert_eq!(err, SosError::FingerprintDecodeFailed);
    }

    #[test]
    fn estimate_fp_cells_has_floor_and_slack() {
        assert!(estimate_fp_cells(0) >= 24);
        assert!(estimate_fp_cells(100) >= 250);
    }

    #[test]
    fn disjoint_multisets_fully_replace() {
        let alice: Vec<ChildSet> = vec![vec![1], vec![2], vec![3]];
        let bob: Vec<ChildSet> = vec![vec![7], vec![8]];
        let out = reconcile(&alice, &bob, &cfg(40)).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
        assert_eq!(out.alice_only_count, 3);
        assert_eq!(out.bob_only_children.len(), 2);
    }

    #[test]
    fn empty_sides() {
        let none: Vec<ChildSet> = Vec::new();
        let some: Vec<ChildSet> = vec![vec![1, 2, 3]];
        let out = reconcile(&none, &some, &cfg(24)).unwrap();
        assert_eq!(out.bob_multiset, some);
        let out = reconcile(&some, &none, &cfg(24)).unwrap();
        assert!(out.bob_multiset.is_empty());
        let out = reconcile(&none, &none, &cfg(24)).unwrap();
        assert!(out.bob_multiset.is_empty());
    }

    #[test]
    fn large_sets_with_small_difference() {
        let shared: Vec<ChildSet> = (0..1000u64).map(|i| vec![i, i * 3, i * 7]).collect();
        let mut alice = shared.clone();
        alice.push(vec![1_000_001, 2, 3]);
        let mut bob = shared;
        bob.push(vec![2_000_001, 4, 5]);
        bob.push(vec![2_000_002, 6, 7]);
        let out = reconcile(&alice, &bob, &cfg(estimate_fp_cells(3))).unwrap();
        assert_eq!(sorted(out.bob_multiset), sorted(bob));
    }
}
