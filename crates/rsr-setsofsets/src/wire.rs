//! Byte-exact wire codec for the three sets-of-sets round messages.
//!
//! Formats (all through the shared `rsr-iblt` bit codec; every count is a
//! 32-bit field):
//!
//! * **Round 1**: `num_children`, then the fingerprint IBLT's cells with
//!   count fields sized for `num_children` items.
//! * **Round 2**: the requested tagged fingerprints as raw 64-bit words.
//! * **Round 3**: the child count, an 8-bit *entry width*, then per child
//!   its 64-bit tagged fingerprint, a 32-bit length, and the entries at
//!   the chosen width. The width is the configured `entry_bits` escalated
//!   (and measured honestly) when a child carries wider entries — the Gap
//!   protocol's batch hashes always fit, but generic callers may ship
//!   arbitrary `u64` child sets.
//!
//! Construction parameters (`fp_cells`, `q`, seed, `entry_bits`) travel as
//! public coins inside [`SosConfig`], not on the wire.

use crate::protocol::{Round1, Round2, Round3, SosConfig};
use rsr_iblt::bits::{BitReader, BitWriter};
use rsr_iblt::wire::{bits_for, get_len, put_len};
use rsr_iblt::Iblt;

/// Seed tweak for the round-1 fingerprint IBLT (matches `bob_round1`).
pub(crate) const FP_IBLT_SEED_TWEAK: u64 = 0xb0b1;

/// Encodes a round-1 message.
pub fn put_round1(w: &mut BitWriter, r1: &Round1) {
    put_len(w, r1.num_children);
    r1.iblt.write_to(w, r1.num_children);
}

/// Decodes a round-1 message given the shared configuration.
pub fn get_round1(r: &mut BitReader<'_>, cfg: &SosConfig) -> Option<Round1> {
    let num_children = get_len(r)?;
    let iblt = Iblt::read_from(
        r,
        cfg.fp_cells,
        cfg.q,
        cfg.seed ^ FP_IBLT_SEED_TWEAK,
        num_children,
    )?;
    Some(Round1 { iblt, num_children })
}

/// Exact encoded size of a round-1 message in bits.
pub fn round1_wire_bits(r1: &Round1) -> u64 {
    32 + r1.iblt.wire_bits(r1.num_children)
}

/// Encodes a round-2 message.
pub fn put_round2(w: &mut BitWriter, r2: &Round2) {
    put_len(w, r2.requested.len());
    for &tfp in &r2.requested {
        w.write(tfp, 64);
    }
}

/// Decodes a round-2 message.
pub fn get_round2(r: &mut BitReader<'_>) -> Option<Round2> {
    let count = get_len(r)?;
    let requested = (0..count)
        .map(|_| r.read(64))
        .collect::<Option<Vec<u64>>>()?;
    Some(Round2 { requested })
}

/// Exact encoded size of a round-2 message in bits.
pub fn round2_wire_bits(r2: &Round2) -> u64 {
    32 + 64 * r2.requested.len() as u64
}

/// The entry width a round-3 message uses: the configured `entry_bits`,
/// escalated to fit the widest entry actually shipped.
fn round3_entry_width(r3: &Round3, cfg: &SosConfig) -> u32 {
    let needed = r3
        .children
        .iter()
        .flat_map(|(_, c)| c.iter())
        .map(|&e| bits_for(e as u128))
        .max()
        .unwrap_or(1);
    needed.max(cfg.entry_bits).min(64)
}

/// Encodes a round-3 message.
pub fn put_round3(w: &mut BitWriter, r3: &Round3, cfg: &SosConfig) {
    let width = round3_entry_width(r3, cfg);
    put_len(w, r3.children.len());
    w.write(u64::from(width), 8);
    for (tfp, child) in &r3.children {
        w.write(*tfp, 64);
        put_len(w, child.len());
        for &entry in child {
            w.write(entry, width);
        }
    }
}

/// Decodes a round-3 message.
pub fn get_round3(r: &mut BitReader<'_>) -> Option<Round3> {
    let count = get_len(r)?;
    let width = r.read(8)? as u32;
    if !(1..=64).contains(&width) {
        return None;
    }
    let mut children = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let tfp = r.read(64)?;
        let len = get_len(r)?;
        let child = (0..len)
            .map(|_| r.read(width))
            .collect::<Option<Vec<u64>>>()?;
        children.push((tfp, child));
    }
    Some(Round3 { children })
}

/// Exact encoded size of a round-3 message in bits.
pub fn round3_wire_bits(r3: &Round3, cfg: &SosConfig) -> u64 {
    let width = round3_entry_width(r3, cfg);
    32 + 8
        + r3.children
            .iter()
            .map(|(_, c)| 64 + 32 + c.len() as u64 * u64::from(width))
            .sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{alice_round2, bob_round1, bob_round3, ChildSet};

    fn cfg() -> SosConfig {
        SosConfig {
            fp_cells: 30,
            q: 3,
            seed: 0xFEED,
            entry_bits: 24,
        }
    }

    #[test]
    fn round1_roundtrips_and_measures() {
        let bob: Vec<ChildSet> = vec![vec![1, 2], vec![3, 4], vec![9, 9]];
        let r1 = bob_round1(&bob, &cfg());
        let mut w = BitWriter::new();
        put_round1(&mut w, &r1);
        assert_eq!(w.bit_len(), round1_wire_bits(&r1));
        let buf = w.finish();
        let back = get_round1(&mut BitReader::new(&buf), &cfg()).expect("decodes");
        assert_eq!(back.num_children, 3);
        // The reconstructed IBLT behaves identically: Alice's round 2 on
        // either copy requests the same fingerprints.
        let alice: Vec<ChildSet> = vec![vec![1, 2]];
        let (want, _) = alice_round2(&alice, &r1, &cfg()).unwrap();
        let (got, _) = alice_round2(&alice, &back, &cfg()).unwrap();
        let mut a = want.requested.clone();
        let mut b = got.requested.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn round2_roundtrips() {
        let r2 = Round2 {
            requested: vec![u64::MAX, 0, 42],
        };
        let mut w = BitWriter::new();
        put_round2(&mut w, &r2);
        assert_eq!(w.bit_len(), round2_wire_bits(&r2));
        let buf = w.finish();
        let back = get_round2(&mut BitReader::new(&buf)).unwrap();
        assert_eq!(back.requested, r2.requested);
    }

    #[test]
    fn round3_roundtrips_via_protocol() {
        let alice: Vec<ChildSet> = vec![vec![1, 2]];
        let bob: Vec<ChildSet> = vec![vec![1, 2], vec![7, 8, 9]];
        let c = cfg();
        let r1 = bob_round1(&bob, &c);
        let (r2, _) = alice_round2(&alice, &r1, &c).unwrap();
        let r3 = bob_round3(&bob, &r2, &c).unwrap();
        let mut w = BitWriter::new();
        put_round3(&mut w, &r3, &c);
        assert_eq!(w.bit_len(), round3_wire_bits(&r3, &c));
        let buf = w.finish();
        let back = get_round3(&mut BitReader::new(&buf)).unwrap();
        assert_eq!(back.children, r3.children);
    }

    #[test]
    fn round3_escalates_entry_width_for_wide_entries() {
        // entry_bits = 24 but an entry needs 30 bits: the codec must ship
        // it intact and charge for the wider field.
        let r3 = Round3 {
            children: vec![(5, vec![1_000_031_000u64])],
        };
        let c = cfg();
        let mut w = BitWriter::new();
        put_round3(&mut w, &r3, &c);
        assert_eq!(w.bit_len(), round3_wire_bits(&r3, &c));
        let buf = w.finish();
        let back = get_round3(&mut BitReader::new(&buf)).unwrap();
        assert_eq!(back.children, r3.children);
        assert!(round3_wire_bits(&r3, &c) > 32 + 8 + 64 + 32 + 24);
    }

    #[test]
    fn truncated_rounds_rejected() {
        let r2 = Round2 {
            requested: vec![1, 2, 3],
        };
        let mut w = BitWriter::new();
        put_round2(&mut w, &r2);
        let buf = w.finish();
        assert!(get_round2(&mut BitReader::new(&buf[..buf.len() - 1])).is_none());
    }
}
