//! Dense GF(2) linear algebra over bit-packed rows.
//!
//! The hybrid decoder ([`crate::iblt::DecodeMode::Hybrid`]) uses this
//! module twice per stuck core:
//!
//! 1. **Basis extraction.** Each residual cell contributes the row
//!    `key_xor ‖ check_xor` ∈ GF(2)^126. Row-reducing the cell rows
//!    compresses `r` cells to a rank-`R` basis of the span of the
//!    unknown key vectors `(k, checksum(k))` — the XORSAT view of the
//!    2-core ("Tight Thresholds for Cuckoo Hashing via XORSAT"): cells
//!    are equations, stuck keys are variables, and the span of the
//!    equations is exactly the set of key combinations reachable by
//!    XOR-ing cells. Enumerating the 2^R span elements (Gray-code, one
//!    row XOR per step) and checksum-testing each finds every stuck
//!    key whose indicator vector lies in the column space of the
//!    incidence matrix — w.h.p. all of them for a random solvable core.
//! 2. **Sign recovery.** Once the stuck *keys* are known, whether each
//!    decodes positive (inserted-side) or negative (deleted-side) is a
//!    second linear system with **known** incidence: per cell,
//!    `Σ_k sign_k = count`; substituting `sign = 1 − 2y` makes it
//!    `A·y = d (mod 2)` over the indicator `y_k = [sign_k = −1]`,
//!    solved exactly by [`solve`].
//!
//! Rows are `Vec<u64>` words (LSB of word 0 is column 0). The matrices
//! involved are tiny (a stuck core is small by construction — that is
//! why it survived peeling), so clarity wins over blocking tricks; the
//! dense row-XOR inner loop still vectorizes.

/// Bits per row word.
pub const WORD_BITS: usize = 64;

/// A dense boolean matrix over GF(2) with bit-packed rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gf2Matrix {
    cols: usize,
    words: usize,
    rows: Vec<Vec<u64>>,
}

impl Gf2Matrix {
    /// An empty matrix with `cols` columns.
    pub fn new(cols: usize) -> Self {
        Gf2Matrix {
            cols,
            words: cols.div_ceil(WORD_BITS).max(1),
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Words per row.
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Appends a row given as packed words (missing high words are
    /// zero). Panics if a bit beyond `cols` is set.
    pub fn push_row_words(&mut self, words: &[u64]) {
        assert!(words.len() <= self.words, "row wider than the matrix");
        let mut row = vec![0u64; self.words];
        row[..words.len()].copy_from_slice(words);
        let spare = self.words * WORD_BITS - self.cols;
        if spare > 0 {
            let mask = u64::MAX >> spare;
            assert_eq!(
                row[self.words - 1] & !mask,
                0,
                "bits set beyond column {}",
                self.cols
            );
        }
        self.rows.push(row);
    }

    /// Appends a row with ones exactly at `set_cols`.
    pub fn push_row_cols(&mut self, set_cols: &[usize]) {
        let mut row = vec![0u64; self.words];
        for &c in set_cols {
            assert!(c < self.cols, "column {c} out of range");
            row[c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
        }
        self.rows.push(row);
    }

    /// The bit at `(row, col)`.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        (self.rows[row][col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1
    }

    /// A copy of row `row`'s packed words.
    pub fn row_words(&self, row: usize) -> &[u64] {
        &self.rows[row]
    }

    /// In-place reduction to **reduced row echelon form**. Returns the
    /// pivot column of each of the first `rank` rows; rows below the
    /// rank come out all-zero.
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut next_row = 0;
        for col in 0..self.cols {
            let word = col / WORD_BITS;
            let bit = 1u64 << (col % WORD_BITS);
            let Some(found) = (next_row..self.rows.len()).find(|&r| self.rows[r][word] & bit != 0)
            else {
                continue;
            };
            self.rows.swap(next_row, found);
            // Clear the pivot column from every *other* row (full
            // reduction, not just below): each basis row then has a
            // column where it alone is set, which is what makes the
            // span enumeration's combinations canonical.
            for r in 0..self.rows.len() {
                if r != next_row && self.rows[r][word] & bit != 0 {
                    let (dst, src) = if r < next_row {
                        let (a, b) = self.rows.split_at_mut(next_row);
                        (&mut a[r], &b[0])
                    } else {
                        let (a, b) = self.rows.split_at_mut(r);
                        (&mut b[0], &a[next_row])
                    };
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d ^= *s;
                    }
                }
            }
            pivots.push(col);
            next_row += 1;
            if next_row == self.rows.len() {
                break;
            }
        }
        pivots
    }

    /// The rank of the matrix (leaves `self` untouched).
    pub fn rank(&self) -> usize {
        self.clone().rref().len()
    }

    /// The nonzero rows (call after [`Gf2Matrix::rref`] for a basis of
    /// the row space).
    pub fn nonzero_rows(&self) -> Vec<Vec<u64>> {
        self.rows
            .iter()
            .filter(|r| r.iter().any(|&w| w != 0))
            .cloned()
            .collect()
    }
}

/// Outcome of solving `A·x = b` over GF(2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gf2Solution {
    /// Exactly one solution.
    Unique(Vec<bool>),
    /// Consistent but with `2^(cols − rank)` solutions; the system
    /// cannot pin `x` down on its own.
    Underdetermined {
        /// Rank of the coefficient matrix.
        rank: usize,
    },
    /// No assignment satisfies every equation.
    Inconsistent,
}

/// Solves `A·x = b` over GF(2) by eliminating the augmented matrix
/// `[A | b]`. `b.len()` must equal `a.num_rows()`.
pub fn solve(a: &Gf2Matrix, b: &[bool]) -> Gf2Solution {
    assert_eq!(a.num_rows(), b.len(), "b length must match the row count");
    let cols = a.cols();
    let mut aug = Gf2Matrix::new(cols + 1);
    for (r, &rhs) in b.iter().enumerate() {
        let mut words = a.rows[r].clone();
        words.resize(aug.words_per_row(), 0);
        if rhs {
            words[cols / WORD_BITS] |= 1u64 << (cols % WORD_BITS);
        }
        aug.push_row_words(&words);
    }
    let pivots = aug.rref();
    // A pivot in the augmented column means a row 0…0 | 1: inconsistent.
    if pivots.last() == Some(&cols) {
        return Gf2Solution::Inconsistent;
    }
    let rank = pivots.len();
    if rank < cols {
        return Gf2Solution::Underdetermined { rank };
    }
    // Full column rank in RREF: row i is the unit vector of pivot i and
    // its augmented bit is x at that column.
    let mut x = vec![false; cols];
    for (i, &col) in pivots.iter().enumerate() {
        x[col] = aug.bit(i, cols);
    }
    Gf2Solution::Unique(x)
}

/// Iterates the **nonzero** elements of the span of `basis` rows in
/// Gray-code order: each step XORs exactly one basis row into the
/// accumulator, so walking all `2^n − 1` combinations costs one row-XOR
/// each. The hybrid decoder walks the span of the residual-cell basis
/// and checksum-tests every element.
pub struct SpanIter {
    basis: Vec<Vec<u64>>,
    acc: Vec<u64>,
    state: u64,
    end: u64,
}

impl SpanIter {
    /// Starts a walk over the span of `basis` (all rows must share a
    /// width). Panics if the basis has more than 62 rows — callers cap
    /// the rank well below that (see `MAX_SOLVE_RANK` in `iblt`).
    pub fn new(basis: Vec<Vec<u64>>) -> SpanIter {
        assert!(basis.len() <= 62, "span too large to enumerate");
        let words = basis.first().map_or(0, Vec::len);
        assert!(basis.iter().all(|r| r.len() == words));
        SpanIter {
            acc: vec![0; words],
            end: 1u64 << basis.len(),
            basis,
            state: 0,
        }
    }
}

impl Iterator for SpanIter {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        self.state += 1;
        if self.state >= self.end {
            return None;
        }
        // Gray code: combination `state ^ (state >> 1)` differs from its
        // predecessor in exactly bit `trailing_zeros(state)`.
        let flip = self.state.trailing_zeros() as usize;
        for (a, b) in self.acc.iter_mut().zip(&self.basis[flip]) {
            *a ^= *b;
        }
        Some(self.acc.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rref_finds_rank_and_pivots() {
        let mut m = Gf2Matrix::new(4);
        m.push_row_cols(&[0, 1]);
        m.push_row_cols(&[1, 2]);
        m.push_row_cols(&[0, 2]); // = row0 + row1
        let pivots = m.rref();
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(m.nonzero_rows().len(), 2);
    }

    #[test]
    fn solve_unique_system() {
        // x0 + x1 = 1, x1 = 1 → x = (0, 1).
        let mut a = Gf2Matrix::new(2);
        a.push_row_cols(&[0, 1]);
        a.push_row_cols(&[1]);
        assert_eq!(
            solve(&a, &[true, true]),
            Gf2Solution::Unique(vec![false, true])
        );
    }

    #[test]
    fn solve_reports_inconsistent_and_underdetermined() {
        let mut a = Gf2Matrix::new(2);
        a.push_row_cols(&[0, 1]);
        a.push_row_cols(&[0, 1]);
        assert_eq!(solve(&a, &[true, false]), Gf2Solution::Inconsistent);
        assert_eq!(
            solve(&a, &[true, true]),
            Gf2Solution::Underdetermined { rank: 1 }
        );
    }

    #[test]
    fn span_iter_visits_every_nonzero_combination_once() {
        let basis = vec![vec![0b001u64], vec![0b010], vec![0b100]];
        let mut seen: Vec<u64> = SpanIter::new(basis).map(|r| r[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1u64..8).collect::<Vec<_>>());
    }

    #[test]
    fn wide_rows_pack_across_words() {
        let mut m = Gf2Matrix::new(126);
        m.push_row_words(&[u64::MAX, (1u64 << 62) - 1]);
        m.push_row_cols(&[0, 64, 125]);
        assert!(m.bit(1, 125));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    #[should_panic]
    fn bits_beyond_cols_rejected() {
        let mut m = Gf2Matrix::new(3);
        m.push_row_words(&[0b1000]);
    }
}
