//! Invertible Bloom Lookup Tables (IBLTs) and the Robust IBLT (RIBLT).
//!
//! An IBLT (Goodrich & Mitzenmacher, Allerton 2011) is a hash table with
//! `m` cells and `q` hash functions per key that supports insertions,
//! deletions (including deletions of keys never inserted — counts go
//! negative), and *inversion*: listing every key currently in the table via
//! a peeling process, provided the load is below the `q`-core threshold of
//! the underlying random hypergraph (Theorem 2.6 of the paper).
//!
//! The paper's EMD protocol needs a stronger variant, the **Robust IBLT**
//! (§2.2): cells aggregate by *sums* instead of XOR, peeling runs in
//! breadth-first (FIFO) order, the table is kept sparse
//! (`c < 1/(q(q−1))`), and cells holding several copies of the *same key
//! with different values* can still be peeled — the values are averaged and
//! randomly rounded back into the grid. The error a cancelled near-pair
//! leaves behind propagates through peeling exactly as in the paper's
//! Figure 1; [`hypergraph`] contains the idealized error-propagation model
//! of Lemma 3.10 for the experiments.
//!
//! Modules:
//!
//! * [`layout`] — the partitioned key→cells mapping shared by both
//!   tables (single-pass key+checksum hashing, struct-of-arrays cells);
//! * [`iblt`] — the standard XOR IBLT (keys only), used for exact set
//!   reconciliation and by the quadtree baseline, with the hybrid
//!   peel-then-GF(2)-solve decoder ([`DecodeMode`]);
//! * [`gf2`] — dense bit-packed GF(2) elimination backing the hybrid
//!   decoder's stuck-core solve;
//! * [`riblt`] — the Robust IBLT (key–value pairs, values are grid points);
//! * [`hypergraph`] — random-hypergraph analysis: 2-cores, component
//!   classification (Lemma B.3), and the Lemma 3.10 error-propagation
//!   process.

pub mod bits;
pub mod gf2;
pub mod hypergraph;
pub mod iblt;
pub mod layout;
pub mod riblt;
pub mod strata;
pub mod wire;

pub use iblt::{DecodeMode, Iblt, IbltDecode, MAX_SOLVE_RANK};
pub use layout::{CellLayout, CellStore};
pub use riblt::{DecodeOptions, PeelOrder, Riblt, RibltConfig, RibltDecode, RoundingMode};
pub use strata::StrataEstimator;
