//! The Robust Invertible Bloom Lookup Table (RIBLT) of §2.2.
//!
//! Differences from a standard IBLT, following the paper's five points:
//!
//! 1. **Breadth-first peeling**: cells that become pure earlier are peeled
//!    earlier (FIFO). This is what makes the error-propagation analysis of
//!    Lemma 3.10 apply.
//! 2. **Sparser tables**: callers size the table so the hyperedge density
//!    `c` satisfies `c < 1/(q(q−1))`, making the hypergraph all trees and
//!    unicyclic components w.h.p. (Lemma B.3). [`RibltConfig::for_pairs`]
//!    applies Algorithm 1's choice `m = 4q²k`.
//! 3. **Key/checksum sums** instead of XORs (`i128` accumulators).
//! 4. **Value sums**: the cell's value accumulator lives in
//!    `{−nΔ, …, nΔ}^d` (`Vec<i64>` per cell).
//! 5. **Duplicate-key extraction**: a cell whose contents are `C` copies of
//!    one key (detected by divisibility of the key and checksum sums) is
//!    peeled even for `|C| > 1`; each extracted value is the coordinate-wise
//!    average `V/C`, clamped into the grid and randomly rounded.
//!
//! When a near-pair with equal keys but different values cancels, the value
//! difference stays behind as an *error* that is added to whatever is
//! peeled from those cells later — the paper's Figure 1. The decoder
//! optionally reports how many extracted pairs were contaminated
//! ([`RibltDecode::contaminated`]) for the F1 experiment.

use crate::iblt::DecodeMode;
use crate::layout::CellLayout;
use rand::Rng;
use rsr_metric::Point;

/// Configuration of a Robust IBLT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RibltConfig {
    /// Minimum number of cells `m` (rounded up to a multiple of `q`).
    pub min_cells: usize,
    /// Number of hash functions `q ≥ 3` (Algorithm 1 requires `q ≥ 3`).
    pub q: usize,
    /// Dimension `d` of the stored values.
    pub dim: usize,
    /// Grid side `Δ`: extracted values are clamped into `[0, Δ−1]`.
    pub delta: i64,
    /// Table seed (shared between the parties via public coins).
    pub seed: u64,
}

impl RibltConfig {
    /// Algorithm 1's sizing: `m = 4q²k` cells for a target of at most `4k`
    /// surviving pairs, giving density `c = 4k/m = 1/q² < 1/(q(q−1))`.
    pub fn for_pairs(k: usize, q: usize, dim: usize, delta: i64, seed: u64) -> Self {
        assert!(q >= 3, "Algorithm 1 requires q ≥ 3");
        RibltConfig {
            min_cells: 4 * q * q * k.max(1),
            q,
            dim,
            delta,
            seed,
        }
    }
}

/// One sum cell.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SumCell {
    count: i64,
    key_sum: i128,
    check_sum: i128,
    value_sum: Vec<i64>,
}

impl SumCell {
    fn empty(dim: usize) -> Self {
        SumCell {
            count: 0,
            key_sum: 0,
            check_sum: 0,
            value_sum: vec![0; dim],
        }
    }

    fn is_clean(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }

    /// True if the cell still carries a value residual after all keys
    /// cancelled — the footprint of a cancelled near-pair.
    fn has_value_residual(&self) -> bool {
        self.is_clean() && self.value_sum.iter().any(|&v| v != 0)
    }
}

/// Peeling order of the decode loop. The paper *requires* breadth-first
/// ("first-come first-served", §2.2 item 1) — Lemma 3.10's bound on error
/// propagation is proved for that order. Depth-first is provided as an
/// ablation: it chases errors along chains, inflating the contamination
/// of extracted values (experiment A1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PeelOrder {
    /// FIFO over cells that became pure (the paper's order).
    #[default]
    BreadthFirst,
    /// LIFO — the ablation.
    DepthFirst,
}

/// Rounding of averaged duplicate-key values (§2.2 item 5). Randomized
/// rounding keeps the extraction unbiased; plain flooring is the ablation
/// (experiment A2) and introduces a systematic downward drift.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoundingMode {
    /// Round up with probability equal to the fractional part.
    #[default]
    Randomized,
    /// Always round down.
    Floor,
}

/// Ablation knobs for [`Riblt::decode_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Peel order (default: the paper's breadth-first).
    pub order: PeelOrder,
    /// Rounding mode (default: the paper's randomized rounding).
    pub rounding: RoundingMode,
    /// Stall strategy (default: [`DecodeMode::Hybrid`]). Sum cells have
    /// no XOR span to solve, so the RIBLT's hybrid stage works on
    /// *pairwise cell differences*: when cell `j`'s contents are a
    /// subset of cell `i`'s, the difference `cell_i − cell_j` isolates
    /// the extra key and passes the same divisibility + checksum +
    /// membership validation an ordinary pure cell does.
    pub mode: DecodeMode,
}

/// A decoded key–value pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedPair {
    /// The recovered key.
    pub key: u64,
    /// The recovered value (grid point, clamped and rounded).
    pub value: Point,
}

/// Result of decoding an RIBLT.
#[derive(Clone, Debug, Default)]
pub struct RibltDecode {
    /// Pairs recovered with positive sign (inserting party's survivors).
    pub inserted: Vec<DecodedPair>,
    /// Pairs recovered with negative sign (deleting party's survivors).
    pub deleted: Vec<DecodedPair>,
    /// True if every key was recovered (all counts and key sums zero).
    pub complete: bool,
    /// Number of extracted pairs whose cell value sum was not an exact
    /// multiple of the count, i.e. pairs whose value was visibly averaged
    /// or fractionally contaminated. (An error absorbed at count ±1 divides
    /// exactly and is *not* counted — detecting those requires ground
    /// truth, which is what the F1 experiment does.)
    pub contaminated: usize,
    /// Number of cells left with a pure value residual (cancelled
    /// near-pairs whose error was never picked up by a peel).
    pub value_residual_cells: usize,
    /// Pairs recovered by the hybrid pairwise-difference stage rather
    /// than by an ordinary pure-cell peel (0 under
    /// [`DecodeMode::PeelOnly`]).
    pub solved: usize,
}

/// The Robust IBLT.
#[derive(Clone, Debug)]
pub struct Riblt {
    config: RibltConfig,
    layout: CellLayout,
    cells: Vec<SumCell>,
    /// Total number of insert/delete operations (sizes the peel guard).
    ops: usize,
}

impl Riblt {
    /// Creates an empty table.
    pub fn new(config: RibltConfig) -> Self {
        let layout = CellLayout::new(config.min_cells, config.q, config.seed);
        Riblt {
            config,
            layout,
            cells: (0..layout.num_cells())
                .map(|_| SumCell::empty(config.dim))
                .collect(),
            ops: 0,
        }
    }

    /// Number of cells `m`.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The configuration.
    pub fn config(&self) -> &RibltConfig {
        &self.config
    }

    /// Inserts a key–value pair (Alice's side in Algorithm 1).
    pub fn insert(&mut self, key: u64, value: &Point) {
        self.update(key, value, 1);
    }

    /// Deletes a key–value pair (Bob's side in Algorithm 1).
    pub fn delete(&mut self, key: u64, value: &Point) {
        self.update(key, value, -1);
    }

    fn update(&mut self, key: u64, value: &Point, sign: i64) {
        assert_eq!(value.dim(), self.config.dim, "value dimension mismatch");
        self.ops += 1;
        // Single-pass hashing: one base hash yields the checksum and all
        // q cell indices.
        let base = self.layout.key_hash(key);
        let check = CellLayout::check_of_hash(base) as i128;
        for i in 0..self.layout.q() {
            let cell = &mut self.cells[self.layout.cell_of_hash(base, i)];
            cell.count += sign;
            cell.key_sum += sign as i128 * key as i128;
            cell.check_sum += sign as i128 * check;
            for (acc, &v) in cell.value_sum.iter_mut().zip(value.coords()) {
                *acc += sign * v;
            }
        }
    }

    /// If count/key-sum/checksum-sum contents (a cell's, or a cell
    /// *difference*'s in the hybrid stage) are consistent with `C` copies
    /// of a single key *that hashes to `must_contain`*, returns that key.
    fn key_of_parts(
        &self,
        count: i64,
        key_sum: i128,
        check_sum: i128,
        must_contain: usize,
    ) -> Option<u64> {
        if count == 0 {
            return None;
        }
        let ci = count as i128;
        if key_sum % ci != 0 || check_sum % ci != 0 {
            return None;
        }
        let key = key_sum / ci;
        if !(0..=u64::MAX as i128).contains(&key) {
            return None;
        }
        let key = key as u64;
        if check_sum / ci != self.layout.check_of(key) as i128 {
            return None;
        }
        // Guard against accidental arithmetic coincidences: the key must
        // actually map to this cell.
        if !self.layout.cells_of(key).contains(&must_contain) {
            return None;
        }
        Some(key)
    }

    /// If the cell's contents are consistent with `C` copies of a single
    /// key *that hashes to this cell*, returns that key.
    fn pure_key(&self, idx: usize) -> Option<u64> {
        let cell = &self.cells[idx];
        self.key_of_parts(cell.count, cell.key_sum, cell.check_sum, idx)
    }

    /// Decodes the table with the breadth-first peeling process of §2.2.
    ///
    /// `rng` drives the randomized rounding of averaged values (§2.2 item
    /// 5); the rounding is the only randomness, so decoding is otherwise
    /// deterministic given the table contents.
    pub fn decode<R: Rng + ?Sized>(self, rng: &mut R) -> RibltDecode {
        self.decode_with(rng, DecodeOptions::default())
    }

    /// [`Riblt::decode`] with explicit ablation knobs. The defaults are
    /// the paper's choices; the alternatives exist to *measure* why the
    /// paper makes them (experiment A1/A2 in DESIGN.md).
    pub fn decode_with<R: Rng + ?Sized>(
        mut self,
        rng: &mut R,
        options: DecodeOptions,
    ) -> RibltDecode {
        let mut result = RibltDecode::default();
        // Each successful peel zeroes the peeled cell; bound the number of
        // stale re-checks to keep the loop linear-ish and safe.
        let mut guard = 8 * (self.cells.len() + self.ops) + 64;
        self.peel_into(&mut result, rng, options, &mut guard);
        if options.mode == DecodeMode::Hybrid {
            // Solve → peel, as the XOR IBLT does, until the keys are all
            // cancelled or a pairwise pass recovers nothing.
            let mut rounds = self.cells.len();
            while !self.cells.iter().all(SumCell::is_clean) && rounds > 0 {
                rounds -= 1;
                if self.solve_pairwise_into(&mut result, rng, options.rounding) == 0 {
                    break;
                }
                self.peel_into(&mut result, rng, options, &mut guard);
            }
        }
        result.complete = self.cells.iter().all(SumCell::is_clean);
        result.value_residual_cells = self.cells.iter().filter(|c| c.has_value_residual()).count();
        result
    }

    /// The §2.2 peeling loop, run to a stall.
    fn peel_into<R: Rng + ?Sized>(
        &mut self,
        result: &mut RibltDecode,
        rng: &mut R,
        options: DecodeOptions,
        guard: &mut usize,
    ) {
        let mut queue: std::collections::VecDeque<usize> = (0..self.cells.len())
            .filter(|&i| self.pure_key(i).is_some())
            .collect();
        while let Some(idx) = match options.order {
            PeelOrder::BreadthFirst => queue.pop_front(),
            PeelOrder::DepthFirst => queue.pop_back(),
        } {
            if *guard == 0 {
                break;
            }
            *guard -= 1;
            let Some(key) = self.pure_key(idx) else {
                continue; // stale
            };
            // Snapshot the cell before mutation.
            let snapshot = self.cells[idx].clone();
            for cell_idx in self.extract_and_subtract(key, &snapshot, result, rng, options.rounding)
            {
                if cell_idx != idx && self.pure_key(cell_idx).is_some() {
                    queue.push_back(cell_idx);
                }
            }
        }
    }

    /// Extracts `snapshot` (known to be `C` copies of `key`) into
    /// `result` and subtracts it from every cell `key` hashes to —
    /// including the source cell, which becomes clean. The subtraction
    /// moves any accumulated value error into the sibling cells, the
    /// paper's error-propagation mechanism. Returns the touched cells.
    fn extract_and_subtract<R: Rng + ?Sized>(
        &mut self,
        key: u64,
        snapshot: &SumCell,
        result: &mut RibltDecode,
        rng: &mut R,
        rounding: RoundingMode,
    ) -> Vec<usize> {
        let copies = snapshot.count.unsigned_abs() as usize;
        let exact = snapshot.value_sum.iter().all(|&v| v % snapshot.count == 0);
        // Extract `copies` values, each the (clamped, randomly rounded)
        // coordinate-wise average V/C.
        for _ in 0..copies {
            let value = self.round_average(snapshot, rng, rounding);
            let pair = DecodedPair { key, value };
            if snapshot.count > 0 {
                result.inserted.push(pair);
            } else {
                result.deleted.push(pair);
            }
            if !exact {
                result.contaminated += 1;
            }
        }
        let mut touched = Vec::with_capacity(self.layout.q());
        for i in 0..self.layout.q() {
            let cell_idx = self.layout.cell_in_partition(key, i);
            let cell = &mut self.cells[cell_idx];
            cell.count -= snapshot.count;
            cell.key_sum -= snapshot.key_sum;
            cell.check_sum -= snapshot.check_sum;
            for (acc, &v) in cell.value_sum.iter_mut().zip(&snapshot.value_sum) {
                *acc -= v;
            }
            touched.push(cell_idx);
        }
        touched
    }

    /// Residual cells a pairwise stage will consider; beyond this the
    /// `O(r²)` scan is skipped (such tables are genuinely overloaded).
    const MAX_PAIRWISE_CELLS: usize = 64;

    /// One hybrid solve pass over a stuck residual. Sum cells carry no
    /// XOR structure, so instead of a GF(2) span this stage forms
    /// *pairwise cell differences*: if cell `j`'s contents are a subset
    /// of cell `i`'s, the difference `cell_i − cell_j` is `C` copies of
    /// the one key `i` holds beyond `j` — validated exactly like a pure
    /// cell (divisibility, checksum, layout membership, and the key must
    /// not hash to `j`, else it would have cancelled in the difference).
    /// Extracts the first validated key and returns 1, or 0 when the
    /// residual yields nothing (the decode then reports incomplete).
    fn solve_pairwise_into<R: Rng + ?Sized>(
        &mut self,
        result: &mut RibltDecode,
        rng: &mut R,
        rounding: RoundingMode,
    ) -> usize {
        let residual: Vec<usize> = (0..self.cells.len())
            .filter(|&i| !self.cells[i].is_clean())
            .collect();
        if residual.len() > Self::MAX_PAIRWISE_CELLS {
            return 0;
        }
        for &i in &residual {
            for &j in &residual {
                if i == j {
                    continue;
                }
                let count = self.cells[i].count - self.cells[j].count;
                let key_sum = self.cells[i].key_sum - self.cells[j].key_sum;
                let check_sum = self.cells[i].check_sum - self.cells[j].check_sum;
                let Some(key) = self.key_of_parts(count, key_sum, check_sum, i) else {
                    continue;
                };
                if self.layout.cells_of(key).contains(&j) {
                    continue;
                }
                let value_sum = self.cells[i]
                    .value_sum
                    .iter()
                    .zip(&self.cells[j].value_sum)
                    .map(|(a, b)| a - b)
                    .collect();
                let snapshot = SumCell {
                    count,
                    key_sum,
                    check_sum,
                    value_sum,
                };
                result.solved += snapshot.count.unsigned_abs() as usize;
                self.extract_and_subtract(key, &snapshot, result, rng, rounding);
                return 1;
            }
        }
        0
    }

    /// Computes one extracted value: `V/C` per coordinate, shifted into the
    /// grid and randomly rounded (probability of rounding up equal to the
    /// fractional remainder), per §2.2 item 5.
    fn round_average<R: Rng + ?Sized>(
        &self,
        cell: &SumCell,
        rng: &mut R,
        rounding: RoundingMode,
    ) -> Point {
        let c = cell.count as f64;
        let coords = cell
            .value_sum
            .iter()
            .map(|&v| {
                let avg = v as f64 / c;
                let clamped = avg.clamp(0.0, (self.config.delta - 1) as f64);
                let floor = clamped.floor();
                let frac = clamped - floor;
                let up = match rounding {
                    RoundingMode::Randomized => frac > 0.0 && rng.gen::<f64>() < frac,
                    RoundingMode::Floor => false,
                };
                floor as i64 + i64::from(up)
            })
            .collect();
        Point::new(coords)
    }

    /// Wire size in bits with counts/sums sized for at most `n_bound`
    /// pairs — the paper's `O(d·log(Δn))` bits per cell (§3). Exactly
    /// matches [`Riblt::to_bytes`] (which pads only to the final byte).
    pub fn wire_bits(&self, n_bound: usize) -> u64 {
        let widths = crate::wire::CellWidths::sum(n_bound, self.config.delta);
        self.cells.len() as u64 * widths.per_cell(self.config.dim)
    }

    /// Writes the cell contents into an in-progress [`crate::bits::BitWriter`],
    /// so the table can ride inside a larger protocol message (the EMD
    /// message packs one table per level). Adds exactly
    /// [`Riblt::wire_bits`] bits.
    pub fn write_to(&self, w: &mut crate::bits::BitWriter, n_bound: usize) {
        let widths = crate::wire::CellWidths::sum(n_bound, self.config.delta);
        let before = w.bit_len();
        for cell in &self.cells {
            crate::wire::put_i64(w, cell.count, widths.count);
            crate::wire::put_i128(w, cell.key_sum, widths.key);
            crate::wire::put_i128(w, cell.check_sum, widths.check);
            for &v in &cell.value_sum {
                crate::wire::put_i64(w, v, widths.value);
            }
        }
        debug_assert_eq!(w.bit_len() - before, self.wire_bits(n_bound));
    }

    /// Reads a table previously written with [`Riblt::write_to`] from an
    /// in-progress [`crate::bits::BitReader`], given the shared
    /// configuration. Returns `None` on buffer exhaustion or a count
    /// exceeding `n_bound`.
    pub fn read_from(
        r: &mut crate::bits::BitReader<'_>,
        config: RibltConfig,
        n_bound: usize,
    ) -> Option<Riblt> {
        let mut table = Riblt::new(config);
        table.ops = n_bound; // sizes the peel guard for received contents
        let widths = crate::wire::CellWidths::sum(n_bound, config.delta);
        for cell in &mut table.cells {
            let count = crate::wire::get_i64(r, widths.count)?;
            if count.unsigned_abs() > n_bound as u64 {
                return None;
            }
            cell.count = count;
            cell.key_sum = crate::wire::get_i128(r, widths.key)?;
            cell.check_sum = crate::wire::get_i128(r, widths.check)?;
            for v in cell.value_sum.iter_mut() {
                *v = crate::wire::get_i64(r, widths.value)?;
            }
        }
        Some(table)
    }

    /// Serializes the cell contents (construction parameters travel as
    /// public coins; rebuild with [`Riblt::from_bytes`]).
    pub fn to_bytes(&self, n_bound: usize) -> Vec<u8> {
        let mut w = crate::bits::BitWriter::new();
        self.write_to(&mut w, n_bound);
        w.finish()
    }

    /// Reconstructs a table from [`Riblt::to_bytes`] output plus the
    /// shared configuration. Returns `None` on truncated input or a
    /// count exceeding `n_bound`.
    pub fn from_bytes(bytes: &[u8], config: RibltConfig, n_bound: usize) -> Option<Riblt> {
        let mut r = crate::bits::BitReader::new(bytes);
        Riblt::read_from(&mut r, config, n_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(cells: usize, dim: usize, delta: i64, seed: u64) -> RibltConfig {
        RibltConfig {
            min_cells: cells,
            q: 3,
            dim,
            delta,
            seed,
        }
    }

    fn p(v: &[i64]) -> Point {
        Point::new(v.to_vec())
    }

    #[test]
    fn exact_roundtrip_without_noise() {
        let mut t = Riblt::new(cfg(90, 2, 100, 1));
        let items = [(10u64, p(&[1, 2])), (20, p(&[3, 4])), (30, p(&[5, 6]))];
        for (k, v) in &items {
            t.insert(*k, v);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let d = t.decode(&mut rng);
        assert!(d.complete);
        assert_eq!(d.contaminated, 0);
        let mut got: Vec<_> = d
            .inserted
            .iter()
            .map(|x| (x.key, x.value.clone()))
            .collect();
        got.sort();
        let mut want = items.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn insert_delete_same_pair_cancels_exactly() {
        let mut t = Riblt::new(cfg(90, 2, 100, 2));
        t.insert(5, &p(&[7, 7]));
        t.delete(5, &p(&[7, 7]));
        let mut rng = StdRng::seed_from_u64(0);
        let d = t.decode(&mut rng);
        assert!(d.complete);
        assert!(d.inserted.is_empty() && d.deleted.is_empty());
        assert_eq!(d.value_residual_cells, 0);
    }

    #[test]
    fn cancelled_near_pair_leaves_value_residual() {
        // Same key, different values: keys cancel, value error remains.
        let mut t = Riblt::new(cfg(90, 2, 100, 3));
        t.insert(5, &p(&[7, 7]));
        t.delete(5, &p(&[8, 7]));
        let mut rng = StdRng::seed_from_u64(0);
        let d = t.decode(&mut rng);
        assert!(d.complete); // keys all cancelled
        assert_eq!(d.value_residual_cells, 3); // q = 3 cells carry the error
    }

    #[test]
    fn error_propagates_into_cohabiting_key() {
        // Deterministically build the Figure 1 situation: find a second key
        // sharing a cell with the cancelled pair; its extracted value
        // absorbs the error.
        let config = cfg(60, 1, 1000, 4);
        let layout = CellLayout::new(config.min_cells, config.q, config.seed);
        let base_cells = layout.cells_of(5);
        let other = (6..10_000u64)
            .find(|&k| layout.cells_of(k).iter().any(|c| base_cells.contains(c)))
            .expect("some key shares a cell");
        let mut t = Riblt::new(config);
        t.insert(5, &p(&[100]));
        t.delete(5, &p(&[104])); // error −4 in key 5's cells
        t.insert(other, &p(&[500]));
        let mut rng = StdRng::seed_from_u64(0);
        let d = t.decode(&mut rng);
        assert!(d.complete);
        assert_eq!(d.inserted.len(), 1);
        let got = d.inserted[0].value.coord(0);
        // Which of `other`'s q cells peels first decides whether the error
        // is absorbed (496) or left behind as a residual (500).
        assert!(got == 496 || got == 500, "got {got}");
        if got == 500 {
            assert!(d.value_residual_cells > 0);
        }
    }

    #[test]
    fn duplicate_keys_average_and_round() {
        // Two copies of key 9 with values 10 and 13 → average 11.5,
        // rounded to 11 or 12.
        let mut t = Riblt::new(cfg(90, 1, 100, 5));
        t.insert(9, &p(&[10]));
        t.insert(9, &p(&[13]));
        let mut rng = StdRng::seed_from_u64(1);
        let d = t.decode(&mut rng);
        assert!(d.complete);
        assert_eq!(d.inserted.len(), 2);
        for pair in &d.inserted {
            assert_eq!(pair.key, 9);
            assert!(
                pair.value.coord(0) == 11 || pair.value.coord(0) == 12,
                "got {}",
                pair.value.coord(0)
            );
        }
        assert_eq!(d.contaminated, 2);
    }

    #[test]
    fn randomized_rounding_is_unbiased() {
        // Average 11.5 should round up about half the time.
        let mut ups = 0;
        let trials = 2000;
        for s in 0..trials {
            let mut t = Riblt::new(cfg(90, 1, 100, 6));
            t.insert(9, &p(&[10]));
            t.insert(9, &p(&[13]));
            let mut rng = StdRng::seed_from_u64(s);
            let d = t.decode(&mut rng);
            ups += d
                .inserted
                .iter()
                .filter(|pair| pair.value.coord(0) == 12)
                .count();
        }
        let frac = ups as f64 / (2 * trials) as f64;
        assert!((frac - 0.5).abs() < 0.05, "rounding biased: {frac}");
    }

    #[test]
    fn extracted_values_stay_in_grid() {
        // Negative averages clamp to 0; large ones clamp to Δ−1.
        let mut t = Riblt::new(cfg(90, 1, 50, 7));
        t.insert(3, &p(&[0]));
        t.delete(3, &p(&[49])); // residual −49
        t.insert(4, &p(&[0]));
        // If key 4 shares a cell with key 3 its value picks up −49 → clamped.
        let mut rng = StdRng::seed_from_u64(2);
        let d = t.decode(&mut rng);
        for pair in d.inserted.iter().chain(&d.deleted) {
            assert!((0..50).contains(&pair.value.coord(0)));
        }
    }

    #[test]
    fn mixed_sides_reconcile() {
        let mut t = Riblt::new(cfg(120, 2, 100, 8));
        // Shared pairs cancel; two Alice-only and one Bob-only survive.
        for k in 0..20u64 {
            let v = p(&[k as i64, 1]);
            t.insert(k, &v);
            t.delete(k, &v);
        }
        t.insert(100, &p(&[9, 9]));
        t.insert(101, &p(&[8, 8]));
        t.delete(200, &p(&[7, 7]));
        let mut rng = StdRng::seed_from_u64(3);
        let d = t.decode(&mut rng);
        assert!(d.complete);
        assert_eq!(d.inserted.len(), 2);
        assert_eq!(d.deleted.len(), 1);
        assert_eq!(d.deleted[0].key, 200);
        assert_eq!(d.deleted[0].value, p(&[7, 7]));
    }

    #[test]
    fn pairwise_stage_rescues_pinned_stalled_tables() {
        // Pinned seeds (swept from 0..300) where 24 exact-valued keys in
        // a 30-cell q = 3 table stall pure peeling but the pairwise
        // cell-difference stage completes the decode with the exact
        // key–value pairs.
        for seed in [0u64, 14, 28, 32] {
            let build = || {
                let mut t = Riblt::new(cfg(30, 1, 9000, seed));
                let mut vrng = StdRng::seed_from_u64(seed ^ 0xbeef);
                let mut want = Vec::new();
                for i in 0..24u64 {
                    let v = p(&[vrng.gen_range(0..9000)]);
                    t.insert(i, &v);
                    want.push((i, v));
                }
                (t, want)
            };
            let (t, want) = build();
            let mut rng = StdRng::seed_from_u64(seed);
            let peel = t.decode_with(
                &mut rng,
                DecodeOptions {
                    mode: DecodeMode::PeelOnly,
                    ..DecodeOptions::default()
                },
            );
            assert!(!peel.complete, "seed {seed}: peel now succeeds (stale pin)");
            let (t, want2) = build();
            assert_eq!(want, want2);
            let mut rng = StdRng::seed_from_u64(seed);
            let hybrid = t.decode_with(&mut rng, DecodeOptions::default());
            assert!(hybrid.complete, "seed {seed}: pairwise stage failed");
            assert!(hybrid.solved > 0, "seed {seed}: rescue without solves");
            let mut got: Vec<_> = hybrid
                .inserted
                .iter()
                .map(|x| (x.key, x.value.clone()))
                .collect();
            got.sort();
            assert_eq!(got, want, "seed {seed}: wrong pairs");
        }
    }

    #[test]
    fn overloaded_table_incomplete() {
        let mut t = Riblt::new(cfg(30, 1, 100, 9));
        for k in 0..500u64 {
            t.insert(k, &p(&[1]));
        }
        let mut rng = StdRng::seed_from_u64(4);
        let d = t.decode(&mut rng);
        assert!(!d.complete);
    }

    #[test]
    fn algorithm1_sizing_density_below_threshold() {
        let c = RibltConfig::for_pairs(10, 3, 4, 100, 0);
        // 4k pairs in m = 4q²k cells → density 1/q² < 1/(q(q−1)).
        let density = (4.0 * 10.0) / c.min_cells as f64;
        assert!(density < 1.0 / (3.0 * 2.0));
    }

    #[test]
    fn wire_bits_grows_with_dim_and_delta() {
        let a = Riblt::new(cfg(60, 2, 100, 10));
        let b = Riblt::new(cfg(60, 8, 100, 10));
        let c = Riblt::new(cfg(60, 2, 1_000_000, 10));
        assert!(b.wire_bits(100) > a.wire_bits(100));
        assert!(c.wire_bits(100) > a.wire_bits(100));
    }

    #[test]
    fn large_random_reconciliation() {
        let mut rng = StdRng::seed_from_u64(11);
        let k = 15;
        let config = RibltConfig::for_pairs(k, 3, 3, 1000, 12);
        let mut t = Riblt::new(config);
        // 500 shared exact pairs cancel.
        for i in 0..500u64 {
            let v = p(&[(i % 1000) as i64, 3, 4]);
            t.insert(i, &v);
            t.delete(i, &v);
        }
        // k distinct survivors per side.
        let mut want_a = vec![];
        let mut want_b = vec![];
        for i in 0..k as u64 {
            let va = p(&[rng.gen_range(0..1000), 1, 2]);
            let vb = p(&[rng.gen_range(0..1000), 5, 6]);
            t.insert(10_000 + i, &va);
            t.delete(20_000 + i, &vb);
            want_a.push((10_000 + i, va));
            want_b.push((20_000 + i, vb));
        }
        let d = t.decode(&mut rng);
        assert!(d.complete);
        let mut got_a: Vec<_> = d
            .inserted
            .iter()
            .map(|x| (x.key, x.value.clone()))
            .collect();
        got_a.sort();
        assert_eq!(got_a, want_a);
        let mut got_b: Vec<_> = d.deleted.iter().map(|x| (x.key, x.value.clone())).collect();
        got_b.sort();
        assert_eq!(got_b, want_b);
    }
}
