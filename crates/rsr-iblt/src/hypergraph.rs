//! Random-hypergraph analysis behind IBLT peeling.
//!
//! An IBLT with `m` cells and `q` hashes per key is the random `q`-uniform
//! hypergraph `G^q_{m,cm}`: cells are vertices, keys are hyperedges.
//! Peeling the table is peeling vertices of degree 1. This module provides:
//!
//! * [`Hypergraph`] — explicit hypergraphs, either sampled uniformly
//!   (`G^q_{m,cm}`) or extracted from a concrete [`crate::CellLayout`];
//! * [`Hypergraph::peel`] — the peeling process, reporting the 2-core;
//! * [`Hypergraph::classify_components`] — trees / unicyclic / complex
//!   component counts (Lemma B.3: below density `1/(q(q−1))` everything is
//!   a tree or unicyclic w.h.p.);
//! * [`Hypergraph::error_propagation`] — the Lemma 3.10 process: one random
//!   vertex starts with error count 1; peeling a vertex adds its error
//!   count to every vertex of the peeled edge. The final `Σ C_v` is O(1)
//!   below the density threshold — experiment F1 measures this.

use crate::layout::CellLayout;
use rand::Rng;

/// An explicit `q`-uniform hypergraph on `m` vertices.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<Vec<usize>>,
}

/// Result of peeling a hypergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeelOutcome {
    /// Edges peeled, in peel order.
    pub peeled: Vec<usize>,
    /// Edges remaining in the 2-core (empty iff peeling succeeded).
    pub core: Vec<usize>,
    /// Number of peeling rounds (for the parallel-peeling depth claims).
    pub rounds: usize,
}

/// Component census (Lemma B.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Components that are hypertrees (`V = E(q−1) + 1`).
    pub trees: usize,
    /// Unicyclic components (`V = E(q−1)`).
    pub unicyclic: usize,
    /// Anything denser.
    pub complex: usize,
}

impl Hypergraph {
    /// Creates a hypergraph from explicit edges.
    pub fn new(num_vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        for e in &edges {
            assert!(e.iter().all(|&v| v < num_vertices), "vertex out of range");
            let set: std::collections::HashSet<_> = e.iter().collect();
            assert_eq!(set.len(), e.len(), "edge with repeated vertex");
        }
        Hypergraph {
            num_vertices,
            edges,
        }
    }

    /// Samples `G^q_{m,em}`: `num_edges` edges drawn uniformly (each edge a
    /// uniform `q`-subset of the `m` vertices).
    pub fn sample_uniform<R: Rng + ?Sized>(
        num_vertices: usize,
        num_edges: usize,
        q: usize,
        rng: &mut R,
    ) -> Self {
        assert!(q <= num_vertices);
        let edges = (0..num_edges)
            .map(|_| {
                let mut verts = Vec::with_capacity(q);
                while verts.len() < q {
                    let v = rng.gen_range(0..num_vertices);
                    if !verts.contains(&v) {
                        verts.push(v);
                    }
                }
                verts
            })
            .collect();
        Hypergraph {
            num_vertices,
            edges,
        }
    }

    /// Builds the hypergraph a set of keys induces on a [`CellLayout`] —
    /// the exact graph the corresponding (R)IBLT peels.
    pub fn from_layout(layout: &CellLayout, keys: &[u64]) -> Self {
        Hypergraph {
            num_vertices: layout.num_cells(),
            edges: keys.iter().map(|&k| layout.cells_of(k)).collect(),
        }
    }

    /// Number of vertices `m`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge density `c = edges/vertices`.
    pub fn density(&self) -> f64 {
        self.edges.len() as f64 / self.num_vertices as f64
    }

    fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_vertices];
        for e in &self.edges {
            for &v in e {
                deg[v] += 1;
            }
        }
        deg
    }

    fn incidence(&self) -> Vec<Vec<usize>> {
        let mut inc = vec![Vec::new(); self.num_vertices];
        for (i, e) in self.edges.iter().enumerate() {
            for &v in e {
                inc[v].push(i);
            }
        }
        inc
    }

    /// The structural purity predicate, shared by every peeling process
    /// in this module: a vertex is *peelable* when exactly one live edge
    /// remains on it, and that edge is what it peels. This is the
    /// hypergraph face of the IBLT's pure-cell test
    /// ([`CellLayout::pure_cell_sign`]): a degree-1 cell holds exactly
    /// one key, so its count is ±1 and its checksum matches. Both
    /// [`Hypergraph::peel`] and [`Hypergraph::error_propagation`] resolve
    /// peelability through this one helper (they used to duplicate the
    /// scan), and the `pure_cells_match_degree_one_vertices` regression
    /// test pins the correspondence to the concrete table.
    fn peelable_edge(deg: &[usize], inc: &[Vec<usize>], alive: &[bool], v: usize) -> Option<usize> {
        if deg[v] != 1 {
            return None;
        }
        inc[v].iter().copied().find(|&e| alive[e])
    }

    /// Runs the (round-synchronous) peeling process: every round, all
    /// vertices of degree 1 peel their edges simultaneously. Returns the
    /// peel order and the surviving 2-core.
    pub fn peel(&self) -> PeelOutcome {
        let mut deg = self.degrees();
        let inc = self.incidence();
        let mut alive = vec![true; self.edges.len()];
        let mut peeled = Vec::new();
        let mut rounds = 0;
        loop {
            // All currently-peelable edges (some vertex of degree 1).
            let mut batch = Vec::new();
            for v in 0..self.num_vertices {
                if let Some(e) = Self::peelable_edge(&deg, &inc, &alive, v) {
                    if !batch.contains(&e) {
                        batch.push(e);
                    }
                }
            }
            if batch.is_empty() {
                break;
            }
            rounds += 1;
            for e in batch {
                if !alive[e] {
                    continue;
                }
                alive[e] = false;
                peeled.push(e);
                for &v in &self.edges[e] {
                    deg[v] -= 1;
                }
            }
        }
        let core = (0..self.edges.len()).filter(|&e| alive[e]).collect();
        PeelOutcome {
            peeled,
            core,
            rounds,
        }
    }

    /// Classifies connected components as hypertrees, unicyclic, or complex
    /// (Lemma B.3). Isolated vertices are ignored.
    pub fn classify_components(&self) -> ComponentCensus {
        let inc = self.incidence();
        let mut seen_edge = vec![false; self.edges.len()];
        let mut seen_vertex = vec![false; self.num_vertices];
        let mut census = ComponentCensus::default();
        for start in 0..self.edges.len() {
            if seen_edge[start] {
                continue;
            }
            // BFS over edges via shared vertices.
            let mut stack = vec![start];
            seen_edge[start] = true;
            let mut edge_count = 0usize;
            let mut vertex_count = 0usize;
            let mut weight = 0usize; // Σ (|e| − 1)
            while let Some(e) = stack.pop() {
                edge_count += 1;
                weight += self.edges[e].len() - 1;
                for &v in &self.edges[e] {
                    if !seen_vertex[v] {
                        seen_vertex[v] = true;
                        vertex_count += 1;
                    }
                    for &e2 in &inc[v] {
                        if !seen_edge[e2] {
                            seen_edge[e2] = true;
                            stack.push(e2);
                        }
                    }
                }
            }
            let _ = edge_count;
            if vertex_count == weight + 1 {
                census.trees += 1;
            } else if vertex_count == weight {
                census.unicyclic += 1;
            } else {
                census.complex += 1;
            }
        }
        census
    }

    /// The Lemma 3.10 error-propagation process under breadth-first
    /// peeling: vertex `seed_vertex` starts with error count 1, every other
    /// vertex 0. We repeatedly take the earliest vertex that has degree 1,
    /// peel its unique remaining edge, and add the vertex's error count to
    /// every other vertex of that edge. Returns the final `Σ_v C_v`.
    pub fn error_propagation(&self, seed_vertex: usize) -> u64 {
        assert!(seed_vertex < self.num_vertices);
        let inc = self.incidence();
        let mut deg = self.degrees();
        let mut alive = vec![true; self.edges.len()];
        let mut error = vec![0u64; self.num_vertices];
        error[seed_vertex] = 1;
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.num_vertices).filter(|&v| deg[v] == 1).collect();
        while let Some(v) = queue.pop_front() {
            let Some(e) = Self::peelable_edge(&deg, &inc, &alive, v) else {
                continue; // stale
            };
            alive[e] = false;
            let c_v = error[v];
            for &u in &self.edges[e] {
                deg[u] -= 1;
                if u != v {
                    error[u] += c_v;
                    if deg[u] == 1 {
                        queue.push_back(u);
                    }
                }
            }
        }
        error.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_edge_peels_in_one_round() {
        let g = Hypergraph::new(5, vec![vec![0, 1, 2]]);
        let out = g.peel();
        assert_eq!(out.peeled, vec![0]);
        assert!(out.core.is_empty());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn sparse_graph_fully_peels() {
        let mut rng = StdRng::seed_from_u64(50);
        // Density 0.05 ≪ any threshold.
        let g = Hypergraph::sample_uniform(200, 10, 3, &mut rng);
        assert!(g.peel().core.is_empty());
    }

    #[test]
    fn tight_cycle_is_a_core() {
        // Three edges forming a "sunflower-free" 2-regular structure:
        // every vertex has degree 2 → nothing peels.
        let g = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let out = g.peel();
        assert!(out.peeled.is_empty());
        assert_eq!(out.core.len(), 3);
    }

    #[test]
    fn census_classifies_tree_and_cycle() {
        // Tree: two triples sharing one vertex: V=5, E=2, weight=4 → tree.
        let g = Hypergraph::new(5, vec![vec![0, 1, 2], vec![2, 3, 4]]);
        let c = g.classify_components();
        assert_eq!(
            c,
            ComponentCensus {
                trees: 1,
                unicyclic: 0,
                complex: 0
            }
        );
        // 2-uniform cycle: V=3, E=3, weight=3 → unicyclic.
        let g = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let c = g.classify_components();
        assert_eq!(c.unicyclic, 1);
        assert_eq!(c.trees, 0);
    }

    #[test]
    fn sparse_random_graphs_have_no_complex_components() {
        // Lemma B.3: density < 1/(q(q−1)) ⇒ trees + unicyclic w.h.p.
        let mut rng = StdRng::seed_from_u64(51);
        let q = 3;
        let m = 600;
        let c = 1.0 / (q as f64 * (q - 1) as f64) * 0.8;
        let mut complex = 0;
        for _ in 0..10 {
            let g = Hypergraph::sample_uniform(m, (c * m as f64) as usize, q, &mut rng);
            complex += g.classify_components().complex;
        }
        // Lemma B.3 is a w.h.p. statement; allow a rare straggler.
        assert!(complex <= 2, "too many complex components: {complex}");
    }

    #[test]
    fn error_propagation_zero_if_seed_untouched() {
        // Seed vertex isolated from the single edge: error never moves.
        let g = Hypergraph::new(5, vec![vec![0, 1, 2]]);
        assert_eq!(g.error_propagation(4), 1);
    }

    #[test]
    fn error_propagation_spreads_along_path() {
        // Path of 2-uniform edges: 0-1, 1-2, 2-3. BFS peeling from both
        // ends; seeding at vertex 0 contaminates its neighbours.
        let g = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let total = g.error_propagation(0);
        assert!(total >= 2, "error never propagated: {total}");
    }

    #[test]
    fn error_propagation_is_constant_on_sparse_graphs() {
        // Empirical Lemma 3.10: mean Σ C_v stays O(1) below the density
        // threshold 1/(q(q−1)).
        let mut rng = StdRng::seed_from_u64(52);
        let q = 3;
        let m = 400;
        let c = 0.8 / (q as f64 * (q - 1) as f64);
        let trials = 60;
        let mut total = 0u64;
        for _ in 0..trials {
            let g = Hypergraph::sample_uniform(m, (c * m as f64) as usize, q, &mut rng);
            total += g.error_propagation(rng.gen_range(0..m));
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 8.0, "mean error mass too large: {mean}");
    }

    #[test]
    fn from_layout_matches_table_structure() {
        let layout = CellLayout::new(30, 3, 5);
        let keys = vec![1u64, 2, 3];
        let g = Hypergraph::from_layout(&layout, &keys);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), layout.num_cells());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(g.edges[i], layout.cells_of(k));
        }
    }

    #[test]
    fn peel_matches_iblt_decodability() {
        // The hypergraph peels completely iff the IBLT with the same keys
        // peel-decodes completely (no duplicate keys involved). Peel-only
        // mode: the hypergraph models peeling, not the GF(2) solver.
        let mut rng = StdRng::seed_from_u64(53);
        for trial in 0..20 {
            let seed = 100 + trial;
            let layout = CellLayout::new(24, 3, seed);
            let keys: Vec<u64> = (0..20).map(|_| rng.gen()).collect();
            let g = Hypergraph::from_layout(&layout, &keys);
            let mut t = crate::Iblt::new(24, 3, seed);
            for &k in &keys {
                t.insert(k);
            }
            let d = t.decode_with(crate::DecodeMode::PeelOnly);
            assert_eq!(
                g.peel().core.is_empty(),
                d.complete,
                "mismatch at trial {trial}"
            );
        }
    }

    #[test]
    fn pure_cells_match_degree_one_vertices() {
        // Regression for the shared purity predicate: with distinct
        // random keys, the IBLT's pure cells are exactly the degree-1
        // vertices of the induced hypergraph. Both sides derive cell
        // structure from the same single-pass layout hash, so a change
        // to the hash path that desynchronized them would trip this.
        let mut rng = StdRng::seed_from_u64(54);
        for trial in 0..20 {
            let seed = 500 + trial;
            let layout = CellLayout::new(30, 3, seed);
            let keys: Vec<u64> = (0..18).map(|_| rng.gen()).collect();
            let g = Hypergraph::from_layout(&layout, &keys);
            let deg = g.degrees();
            let degree_one: Vec<usize> = (0..g.num_vertices()).filter(|&v| deg[v] == 1).collect();
            let mut t = crate::Iblt::new(30, 3, seed);
            for &k in &keys {
                t.insert(k);
            }
            assert_eq!(t.pure_cells(), degree_one, "trial {trial}");
        }
    }
}
