//! Strata estimator for set-difference size (Eppstein, Goodrich, Uyeda &
//! Varghese, SIGCOMM 2011 — the paper's reference \[10\]).
//!
//! All IBLT-based reconciliation needs an upper bound on the difference
//! size to size its tables. The strata estimator provides one with a
//! single small message: partition keys into geometric strata by the
//! number of trailing zeros of a hash (stratum `i` holds a `2^{−(i+1)}`
//! fraction of keys), keep a small fixed-size IBLT per stratum, subtract
//! the parties' estimators, and find the deepest stratum that still
//! decodes — if stratum `i` decodes to `d_i` differences, the full
//! difference is ≈ `d_i · 2^{i+1}` plus the shallower strata's exact
//! counts.
//!
//! This makes the protocols in `rsr-core` self-sizing: run the estimator
//! first (one extra message), then size the reconciliation tables from
//! its output.

use crate::iblt::{DecodeMode, Iblt};
use rsr_hash::mix::mix64;

/// Number of strata (covers differences up to ~2^32).
const NUM_STRATA: usize = 32;

/// Cells per stratum IBLT (the classic choice: 80 cells decode ~25 keys
/// per stratum comfortably at q = 3).
const CELLS_PER_STRATUM: usize = 80;

/// A strata estimator: one small IBLT per geometric stratum.
#[derive(Clone, Debug)]
pub struct StrataEstimator {
    strata: Vec<Iblt>,
    seed: u64,
}

impl StrataEstimator {
    /// Creates an empty estimator; both parties must use the same seed.
    pub fn new(seed: u64) -> Self {
        StrataEstimator {
            strata: (0..NUM_STRATA)
                .map(|i| Iblt::new(CELLS_PER_STRATUM, 3, seed ^ ((i as u64 + 1) << 16)))
                .collect(),
            seed,
        }
    }

    /// Stratum of a key: the number of trailing zeros of an independent
    /// hash of the key, capped at the last stratum.
    fn stratum_of(&self, key: u64) -> usize {
        (mix64(key ^ mix64(self.seed ^ 0x57A7)).trailing_zeros() as usize).min(NUM_STRATA - 1)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let s = self.stratum_of(key);
        self.strata[s].insert(key);
    }

    /// Builds an estimator over a whole key set.
    pub fn from_keys(keys: impl IntoIterator<Item = u64>, seed: u64) -> Self {
        let mut e = StrataEstimator::new(seed);
        for k in keys {
            e.insert(k);
        }
        e
    }

    /// Subtracts the other party's estimator (same seed required) and
    /// estimates `|A △ B|` with the default [`DecodeMode::Hybrid`]
    /// per-stratum decode. Returns `None` only if even stratum 0 fails
    /// to decode — practically impossible unless the seeds differ.
    pub fn estimate_difference(self, other: &StrataEstimator) -> Option<usize> {
        self.estimate_difference_with(other, DecodeMode::default())
    }

    /// [`StrataEstimator::estimate_difference`] with an explicit decode
    /// mode for each stratum table. Hybrid decoding lets borderline
    /// strata (the ones whose 80-cell tables stall on a small 2-core)
    /// still decode, so the walk accumulates exact counts deeper before
    /// scaling.
    pub fn estimate_difference_with(
        mut self,
        other: &StrataEstimator,
        mode: DecodeMode,
    ) -> Option<usize> {
        assert_eq!(self.seed, other.seed, "estimators must share a seed");
        for (mine, theirs) in self.strata.iter_mut().zip(&other.strata) {
            mine.subtract(theirs);
        }
        // Walk from the deepest stratum down; accumulate exact counts of
        // decodable strata until one fails, then scale.
        let mut exact = 0usize;
        for (i, table) in self.strata.into_iter().enumerate().rev() {
            let d = table.decode_with(mode);
            if d.complete {
                exact += d.inserted.len() + d.deleted.len();
            } else {
                // Stratum i failed: strata 0..=i hold a 1 − 2^{−(i+1)}…
                // fraction; the standard scaling multiplies the deeper
                // exact total by 2^{i+1}.
                let scale = 1usize << (i + 1).min(40);
                return Some(exact.saturating_mul(scale));
            }
        }
        Some(exact)
    }

    /// Wire size in bits (fixed: the estimator is a constant-size
    /// message).
    pub fn wire_bits(&self) -> u64 {
        self.strata.iter().map(|t| t.wire_bits(1 << 16)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(diff: usize, shared: usize, seed: u64) -> usize {
        let a_keys: Vec<u64> = (0..shared as u64)
            .chain(1_000_000..1_000_000 + diff as u64 / 2)
            .collect();
        let b_keys: Vec<u64> = (0..shared as u64)
            .chain(2_000_000..2_000_000 + diff.div_ceil(2) as u64)
            .collect();
        let a = StrataEstimator::from_keys(a_keys, seed);
        let b = StrataEstimator::from_keys(b_keys, seed);
        a.estimate_difference(&b).expect("estimable")
    }

    #[test]
    fn identical_sets_estimate_zero() {
        assert_eq!(estimate(0, 5000, 1), 0);
    }

    #[test]
    fn small_differences_are_exact() {
        // Small diffs decode in every stratum → exact count.
        for diff in [2usize, 10, 40] {
            let est = estimate(diff, 5000, 2);
            assert_eq!(est, diff, "diff {diff} estimated as {est}");
        }
    }

    #[test]
    fn large_differences_estimated_within_factor_3() {
        for diff in [2_000usize, 20_000] {
            let est = estimate(diff, 10_000, 3);
            let ratio = est as f64 / diff as f64;
            assert!(
                (0.33..=3.0).contains(&ratio),
                "diff {diff} estimated as {est} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn estimator_message_is_constant_size() {
        let small = StrataEstimator::from_keys(0..100u64, 4);
        let large = StrataEstimator::from_keys(0..100_000u64, 4);
        assert_eq!(small.wire_bits(), large.wire_bits());
    }

    #[test]
    #[should_panic]
    fn mismatched_seeds_rejected() {
        let a = StrataEstimator::new(1);
        let b = StrataEstimator::new(2);
        let _ = a.estimate_difference(&b);
    }
}
