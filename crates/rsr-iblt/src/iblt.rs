//! The standard XOR-based IBLT (keys only).
//!
//! Used for exact set reconciliation (§2.2: "Bob constructs an O(d) cell
//! IBLT by adding each of his set elements to it… Alice … deletes each of
//! her set elements from it") and by the quadtree baseline. Cells hold a
//! count, a key XOR and a checksum XOR; a cell is *pure* when its count is
//! ±1 and its checksum matches the checksum of its key XOR. Peeling pure
//! cells recovers the symmetric difference.
//!
//! # Hybrid decoding
//!
//! Peeling fails exactly when the cell hypergraph develops a 2-core —
//! well below the information-theoretic limit. The stuck residual is a
//! small linear system over GF(2) (the XORSAT view): each residual cell
//! says "the XOR of the unknown keys hashing here is `key_xor`", and the
//! checksum XOR rides along as 62 more equation bits per cell. The
//! [`DecodeMode::Hybrid`] decoder (the default) therefore alternates:
//!
//! 1. **Peel** pure cells as usual (cheap, handles everything outside
//!    the 2-core);
//! 2. **Solve**: row-reduce the residual cells' `key_xor ‖ check_xor`
//!    vectors to a rank-`R` basis, enumerate the `2^R − 1` span elements
//!    (Gray code, one XOR each; skipped when `R >` [`MAX_SOLVE_RANK`]),
//!    and keep the elements whose checksum half matches the checksum of
//!    their key half — those are recovered keys w.h.p. (false positive
//!    `≈ 2^{-62}` per element, plus a structural guard that every cell
//!    of the candidate is residual);
//! 3. **Resolve signs** (inserted vs deleted side) from the integer
//!    count equations — unit propagation first, a tiny GF(2) solve for
//!    whatever parity still pins down — then subtract the solved keys
//!    and go back to 1.
//!
//! The loop ends when the table empties or a pass recovers nothing. The
//! final emptiness check still decides [`IbltDecode::complete`], so an
//! unsolvable or checksum-fooled residual is reported incomplete, never
//! mis-decoded — the same never-fabricate invariant the pure peeler has.

use crate::gf2::{self, Gf2Matrix, Gf2Solution, SpanIter};
use crate::layout::{CellLayout, CellStore};
use rsr_hash::checksum::CHECKSUM_BITS;
use std::sync::{Arc, OnceLock};

/// How [`Iblt::decode_with`] treats a peeling stall.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecodeMode {
    /// Classic peeling only: stop at the first 2-core.
    PeelOnly,
    /// Peel, then GF(2)-solve the stuck core and resume peeling — the
    /// default for every protocol decode path.
    #[default]
    Hybrid,
}

/// Largest residual rank the hybrid solver will enumerate (`2^R − 1`
/// span elements, so 16 caps a solve pass at 65 535 cheap row XORs).
/// Residuals denser than this are genuinely overloaded tables where the
/// span is astronomically unlikely to contain checksummed keys anyway.
pub const MAX_SOLVE_RANK: usize = 16;

/// A standard IBLT holding 64-bit keys.
///
/// The table is *signed*: [`Iblt::insert`] adds a key, [`Iblt::delete`]
/// removes one (possibly never inserted, driving the count negative). In
/// reconciliation the inserting party's survivors decode with count `+1`
/// and the deleting party's with `−1`.
#[derive(Clone, Debug)]
pub struct Iblt {
    layout: CellLayout,
    cells: CellStore,
}

/// Result of decoding an IBLT.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IbltDecode {
    /// Keys recovered with positive sign (inserted-side survivors).
    pub inserted: Vec<u64>,
    /// Keys recovered with negative sign (deleted-side survivors).
    pub deleted: Vec<u64>,
    /// True if the table fully emptied (every key recovered).
    pub complete: bool,
    /// Keys recovered by peeling pure cells.
    pub peeled: usize,
    /// Keys recovered by the GF(2) solver (always 0 under
    /// [`DecodeMode::PeelOnly`]).
    pub solved: usize,
    /// Largest GF(2) rank any stuck residual reached (0 if peeling never
    /// stalled with content left).
    pub residual_rank: usize,
}

/// Process-wide decode counters, resolved once and recorded behind
/// [`rsr_obs::enabled`].
struct DecodeMetrics {
    peeled: Arc<rsr_obs::Counter>,
    solved: Arc<rsr_obs::Counter>,
    failed: Arc<rsr_obs::Counter>,
}

fn decode_metrics() -> &'static DecodeMetrics {
    static METRICS: OnceLock<DecodeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rsr_obs::global();
        DecodeMetrics {
            peeled: reg.counter("iblt_decode_peeled_total"),
            solved: reg.counter("iblt_decode_solved_total"),
            failed: reg.counter("iblt_decode_failed_total"),
        }
    })
}

impl Iblt {
    /// Creates an empty table with at least `min_cells` cells and `q` hash
    /// functions, seeded by `seed`.
    pub fn new(min_cells: usize, q: usize, seed: u64) -> Self {
        let layout = CellLayout::new(min_cells, q, seed);
        Iblt {
            layout,
            cells: CellStore::new(layout.num_cells()),
        }
    }

    /// Number of cells `m`.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions `q`.
    pub fn q(&self) -> usize {
        self.layout.q()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Deletes a key (count may go negative).
    pub fn delete(&mut self, key: u64) {
        self.update(key, -1);
    }

    fn update(&mut self, key: u64, sign: i64) {
        // Single-pass hashing: one base hash feeds the checksum and all
        // q cell indices (q + 1 mixes per update in total).
        let base = self.layout.key_hash(key);
        let check = CellLayout::check_of_hash(base);
        for i in 0..self.layout.q() {
            self.cells
                .apply(self.layout.cell_of_hash(base, i), sign, key, check);
        }
    }

    /// Subtracts another table cell-wise (`self − other`). Both tables must
    /// share layout parameters and seed. After `a.subtract(&b)`, keys in
    /// both tables cancel; `a`'s survivors decode positive, `b`'s negative.
    pub fn subtract(&mut self, other: &Iblt) {
        assert_eq!(self.layout, other.layout, "layout mismatch");
        self.cells.subtract(&other.cells);
    }

    /// A cell-identical copy of the table, retained as the baseline a
    /// later delta is measured against. Continuous reconciliation keeps
    /// one table resident per party, snapshots it at every settle, and
    /// ships only [`Iblt::delta_since`] the snapshot each round.
    pub fn snapshot(&self) -> Iblt {
        self.clone()
    }

    /// The table containing exactly the keys whose membership changed
    /// since `snapshot` was taken: `self − snapshot`, cell-wise. Because
    /// the table size tracks the *churn bound* rather than the set size,
    /// this costs O(m) cell operations however large the underlying set
    /// has grown — the heart of the O(churn) incremental round. Keys
    /// inserted since the snapshot decode positive, keys deleted decode
    /// negative. Panics if the layouts differ (like [`Iblt::subtract`]).
    pub fn delta_since(&self, snapshot: &Iblt) -> Iblt {
        let mut delta = self.clone();
        delta.subtract(snapshot);
        delta
    }

    fn is_pure(&self, idx: usize) -> bool {
        self.layout
            .pure_cell_sign(
                self.cells.count(idx),
                self.cells.key_xor(idx),
                self.cells.check_xor(idx),
            )
            .is_some()
    }

    /// Indices of all currently pure cells — the IBLT face of the
    /// hypergraph's degree-1 vertices (see the regression test tying the
    /// two together in `hypergraph.rs`).
    pub fn pure_cells(&self) -> Vec<usize> {
        (0..self.cells.len()).filter(|&i| self.is_pure(i)).collect()
    }

    /// Decodes the table with the default [`DecodeMode::Hybrid`]. The
    /// table is consumed back to the state it would have after removing
    /// every recovered key; on complete success it is empty.
    pub fn decode(self) -> IbltDecode {
        self.decode_with(DecodeMode::default())
    }

    /// [`Iblt::decode`] with an explicit stall strategy.
    pub fn decode_with(mut self, mode: DecodeMode) -> IbltDecode {
        let mut result = IbltDecode::default();
        self.peel_into(&mut result);
        if mode == DecodeMode::Hybrid {
            // Solve → peel until the table empties or a pass goes dry.
            // Each productive pass subtracts at least one key; the cap
            // bounds pathological oscillation from a checksum-fooled
            // candidate (probability ≈ 2^{-62} per span element).
            let mut guard = self.cells.len();
            while !self.cells.all_empty() && guard > 0 {
                guard -= 1;
                if self.solve_residual_into(&mut result) == 0 {
                    break;
                }
                self.peel_into(&mut result);
            }
        }
        result.complete = self.cells.all_empty();
        if rsr_obs::enabled() {
            let m = decode_metrics();
            m.peeled.add(result.peeled as u64);
            m.solved.add(result.solved as u64);
            if !result.complete {
                m.failed.inc();
            }
        }
        result
    }

    /// Breadth-first peeling of pure cells into `result`.
    fn peel_into(&mut self, result: &mut IbltDecode) {
        let mut queue: std::collections::VecDeque<usize> = self.pure_cells().into();
        while let Some(idx) = queue.pop_front() {
            if !self.is_pure(idx) {
                continue; // stale entry
            }
            let key = self.cells.key_xor(idx);
            let sign = self.cells.count(idx);
            if sign > 0 {
                result.inserted.push(key);
            } else {
                result.deleted.push(key);
            }
            result.peeled += 1;
            self.update(key, -sign);
            let base = self.layout.key_hash(key);
            for i in 0..self.layout.q() {
                let cell = self.layout.cell_of_hash(base, i);
                if self.is_pure(cell) {
                    queue.push_back(cell);
                }
            }
        }
    }

    /// One GF(2) solve pass over the stuck residual. Recovers keys from
    /// the span of the residual cell equations, resolves their signs, and
    /// subtracts them. Returns how many keys were subtracted.
    fn solve_residual_into(&mut self, result: &mut IbltDecode) -> usize {
        let residual: Vec<usize> = (0..self.cells.len())
            .filter(|&i| !self.cells.cell_is_empty(i))
            .collect();
        if residual.is_empty() {
            return 0;
        }
        // Each residual cell: 126-bit row `key_xor (64) ‖ check_xor (62)`.
        let mut matrix = Gf2Matrix::new(64 + CHECKSUM_BITS as usize);
        for &i in &residual {
            matrix.push_row_words(&[self.cells.key_xor(i), self.cells.check_xor(i)]);
        }
        matrix.rref();
        let basis = matrix.nonzero_rows();
        let rank = basis.len();
        result.residual_rank = result.residual_rank.max(rank);
        if rank == 0 || rank > MAX_SOLVE_RANK {
            return 0;
        }
        let mut residual_set = vec![false; self.cells.len()];
        for &i in &residual {
            residual_set[i] = true;
        }
        // Every true stuck key's vector (key, checksum(key)) lies in the
        // span of the cell rows; walk the span and keep the elements that
        // self-certify via their checksum half, then structurally via
        // their cells all being residual.
        let mut candidates: Vec<u64> = SpanIter::new(basis)
            .filter_map(|combo| {
                let key = combo[0];
                let check = combo[1];
                if self.layout.check_of(key) != check {
                    return None;
                }
                let base = self.layout.key_hash(key);
                (0..self.layout.q())
                    .all(|i| residual_set[self.layout.cell_of_hash(base, i)])
                    .then_some(key)
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return 0;
        }
        let signs = self.solve_signs(&residual, &candidates);
        let mut subtracted = 0;
        for (&key, &sign) in candidates.iter().zip(&signs) {
            let Some(sign) = sign else { continue };
            if sign > 0 {
                result.inserted.push(key);
            } else {
                result.deleted.push(key);
            }
            result.solved += 1;
            self.update(key, -sign);
            subtracted += 1;
        }
        subtracted
    }

    /// Determines each candidate's sign from the integer count equations.
    /// A cell is *explained* when the XOR of its incident candidates'
    /// keys and checksums reproduces the cell contents exactly; such a
    /// cell yields `Σ_j y_j = (n − count)/2` over `y_j = [sign_j = −1]`.
    /// Unit propagation settles the all-plus / all-minus cells, a GF(2)
    /// parity solve handles the remainder, and anything still ambiguous
    /// is left unassigned (the key stays in the table and the decode
    /// reports incomplete rather than guessing).
    fn solve_signs(&self, residual: &[usize], candidates: &[u64]) -> Vec<Option<i64>> {
        struct CountEq {
            members: Vec<usize>,
            rhs: i64,
        }
        let mut incident: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (j, &key) in candidates.iter().enumerate() {
            let base = self.layout.key_hash(key);
            for i in 0..self.layout.q() {
                incident
                    .entry(self.layout.cell_of_hash(base, i))
                    .or_default()
                    .push(j);
            }
        }
        let mut eqs: Vec<CountEq> = Vec::new();
        for &i in residual {
            let Some(members) = incident.get(&i) else {
                continue;
            };
            let key_xor = members.iter().fold(0u64, |a, &j| a ^ candidates[j]);
            let check_xor = members
                .iter()
                .fold(0u64, |a, &j| a ^ self.layout.check_of(candidates[j]));
            if key_xor != self.cells.key_xor(i) || check_xor != self.cells.check_xor(i) {
                continue; // cell holds keys beyond the candidates — unusable
            }
            let n = members.len() as i64;
            let twice = n - self.cells.count(i);
            if twice < 0 || twice % 2 != 0 || twice / 2 > n {
                continue; // count inconsistent with ±1 signs — unusable
            }
            eqs.push(CountEq {
                members: members.clone(),
                rhs: twice / 2,
            });
        }
        let mut signs: Vec<Option<i64>> = vec![None; candidates.len()];
        loop {
            let mut changed = false;
            for eq in &eqs {
                let mut rhs = eq.rhs;
                let mut open = Vec::new();
                for &j in &eq.members {
                    match signs[j] {
                        Some(s) if s < 0 => rhs -= 1,
                        Some(_) => {}
                        None => open.push(j),
                    }
                }
                if open.is_empty() || rhs < 0 || rhs > open.len() as i64 {
                    continue;
                }
                if rhs == 0 {
                    for j in open {
                        signs[j] = Some(1);
                    }
                    changed = true;
                } else if rhs == open.len() as i64 {
                    for j in open {
                        signs[j] = Some(-1);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let open: Vec<usize> = (0..candidates.len())
            .filter(|&j| signs[j].is_none())
            .collect();
        if open.is_empty() {
            return signs;
        }
        // Parity of the leftover equations: Σ y_j ≡ rhs (mod 2). Only a
        // unique solution that also satisfies the equations over ℤ is
        // trusted.
        let col_of: std::collections::HashMap<usize, usize> =
            open.iter().enumerate().map(|(c, &j)| (j, c)).collect();
        let mut a = Gf2Matrix::new(open.len());
        let mut b = Vec::new();
        let mut integer_eqs: Vec<(Vec<usize>, i64)> = Vec::new();
        for eq in &eqs {
            let mut rhs = eq.rhs;
            let mut cols = Vec::new();
            for &j in &eq.members {
                match signs[j] {
                    Some(s) if s < 0 => rhs -= 1,
                    Some(_) => {}
                    None => cols.push(col_of[&j]),
                }
            }
            if cols.is_empty() || rhs < 0 || rhs > cols.len() as i64 {
                continue;
            }
            a.push_row_cols(&cols);
            b.push(rhs % 2 == 1);
            integer_eqs.push((cols, rhs));
        }
        if let Gf2Solution::Unique(y) = gf2::solve(&a, &b) {
            let exact = integer_eqs
                .iter()
                .all(|(cols, rhs)| cols.iter().filter(|&&c| y[c]).count() as i64 == *rhs);
            if exact {
                for (c, &j) in open.iter().enumerate() {
                    signs[j] = Some(if y[c] { -1 } else { 1 });
                }
            }
        }
        signs
    }

    /// Wire size in bits of the serialized table, with counts sized for
    /// at most `n_bound` items. Exactly matches [`Iblt::to_bytes`] (which
    /// pads only to the final byte).
    pub fn wire_bits(&self, n_bound: usize) -> u64 {
        self.cells.len() as u64 * crate::wire::CellWidths::xor(n_bound).per_cell(0)
    }

    /// Writes the cell contents into an in-progress [`BitWriter`](crate::bits::BitWriter), so the
    /// table can ride inside a larger protocol message. Adds exactly
    /// [`Iblt::wire_bits`] bits.
    pub fn write_to(&self, w: &mut crate::bits::BitWriter, n_bound: usize) {
        let widths = crate::wire::CellWidths::xor(n_bound);
        let before = w.bit_len();
        for idx in 0..self.cells.len() {
            crate::wire::put_i64(w, self.cells.count(idx), widths.count);
            w.write(self.cells.key_xor(idx), widths.key);
            w.write(self.cells.check_xor(idx), widths.check);
        }
        debug_assert_eq!(w.bit_len() - before, self.wire_bits(n_bound));
    }

    /// Reads a table previously written with [`Iblt::write_to`] from an
    /// in-progress [`BitReader`](crate::bits::BitReader), given the shared construction parameters.
    /// Returns `None` on buffer exhaustion or a count exceeding `n_bound`.
    pub fn read_from(
        r: &mut crate::bits::BitReader<'_>,
        min_cells: usize,
        q: usize,
        seed: u64,
        n_bound: usize,
    ) -> Option<Iblt> {
        let mut table = Iblt::new(min_cells, q, seed);
        let widths = crate::wire::CellWidths::xor(n_bound);
        for idx in 0..table.cells.len() {
            let count = crate::wire::get_i64(r, widths.count)?;
            if count.unsigned_abs() > n_bound as u64 {
                return None;
            }
            let key_xor = r.read(widths.key)?;
            let check_xor = r.read(widths.check)?;
            table.cells.set(idx, count, key_xor, check_xor);
        }
        Some(table)
    }

    /// Serializes the cell contents. The construction parameters (cell
    /// count, `q`, seed) are shared via public coins and not resent; the
    /// peer rebuilds with [`Iblt::from_bytes`] and the same parameters.
    pub fn to_bytes(&self, n_bound: usize) -> Vec<u8> {
        let mut w = crate::bits::BitWriter::new();
        self.write_to(&mut w, n_bound);
        w.finish()
    }

    /// Reconstructs a table from [`Iblt::to_bytes`] output plus the
    /// shared construction parameters. Returns `None` if the buffer is
    /// too short or a count exceeds `n_bound`.
    pub fn from_bytes(
        bytes: &[u8],
        min_cells: usize,
        q: usize,
        seed: u64,
        n_bound: usize,
    ) -> Option<Iblt> {
        let mut r = crate::bits::BitReader::new(bytes);
        Iblt::read_from(&mut r, min_cells, q, seed, n_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_recovers_inserted_keys() {
        let mut t = Iblt::new(40, 3, 1);
        let keys = [3u64, 17, 99, 12345];
        for &k in &keys {
            t.insert(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let mut got = d.inserted.clone();
        got.sort_unstable();
        assert_eq!(got, {
            let mut v = keys.to_vec();
            v.sort_unstable();
            v
        });
        assert!(d.deleted.is_empty());
        assert_eq!(d.peeled + d.solved, 4);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut t = Iblt::new(40, 3, 2);
        t.insert(5);
        t.insert(6);
        t.delete(5);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.inserted, vec![6]);
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn deleted_side_keys_surface_with_negative_sign() {
        let mut t = Iblt::new(40, 3, 3);
        t.delete(1000);
        t.delete(2000);
        let d = t.decode();
        assert!(d.complete);
        assert!(d.inserted.is_empty());
        let mut got = d.deleted.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1000, 2000]);
    }

    #[test]
    fn set_reconciliation_roundtrip() {
        // Bob inserts his set, Alice deletes hers; survivors are the
        // symmetric difference with signs telling whose side each is on.
        let bob: Vec<u64> = (0..1000).collect();
        let alice: Vec<u64> = (5..1005).collect();
        let mut t = Iblt::new(80, 3, 4);
        for &k in &bob {
            t.insert(k);
        }
        for &k in &alice {
            t.delete(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let mut bob_only = d.inserted.clone();
        bob_only.sort_unstable();
        assert_eq!(bob_only, (0..5).collect::<Vec<u64>>());
        let mut alice_only = d.deleted.clone();
        alice_only.sort_unstable();
        assert_eq!(alice_only, (1000..1005).collect::<Vec<u64>>());
    }

    #[test]
    fn subtract_equals_insert_delete() {
        let mut a = Iblt::new(150, 3, 9);
        let mut b = Iblt::new(150, 3, 9);
        for k in 0..50u64 {
            a.insert(k);
        }
        for k in 25..75u64 {
            b.insert(k);
        }
        a.subtract(&b);
        let d = a.decode();
        assert!(d.complete);
        assert_eq!(d.inserted.len(), 25); // 0..25 only in a
        assert_eq!(d.deleted.len(), 25); // 50..75 only in b
    }

    #[test]
    fn overloaded_table_reports_incomplete() {
        let mut t = Iblt::new(12, 3, 5);
        for k in 0..200u64 {
            t.insert(k);
        }
        let d = t.decode();
        assert!(!d.complete);
    }

    #[test]
    fn duplicate_insertions_block_pure_cells_but_do_not_lie() {
        // Two copies of the same key produce count-2 cells whose XORs
        // cancel; neither peeling nor the GF(2) stage (which only sees
        // odd-multiplicity keys) may fabricate anything.
        let mut t = Iblt::new(40, 3, 6);
        t.insert(77);
        t.insert(77);
        let d = t.decode();
        assert!(!d.complete);
        assert!(d.inserted.is_empty() && d.deleted.is_empty());
    }

    #[test]
    fn hybrid_rescues_a_stuck_core() {
        // Find a load where pure peeling fails but hybrid decodes, and
        // check the recovered set is exact.
        let mut rescued = 0;
        for seed in 0..200u64 {
            let n = 24u64;
            let mut t = Iblt::new(30, 3, seed);
            for k in 0..n {
                t.insert(k * 7919 + seed);
            }
            let peel = t.clone().decode_with(DecodeMode::PeelOnly);
            if peel.complete {
                continue;
            }
            let hybrid = t.decode_with(DecodeMode::Hybrid);
            if !hybrid.complete {
                continue;
            }
            rescued += 1;
            assert!(hybrid.solved > 0, "rescue must come from the solver");
            assert!(hybrid.residual_rank > 0);
            let mut got = hybrid.inserted.clone();
            got.sort_unstable();
            let mut want: Vec<u64> = (0..n).map(|k| k * 7919 + seed).collect();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
            assert!(hybrid.deleted.is_empty());
        }
        assert!(rescued > 0, "no stuck-but-solvable cores in 200 seeds");
    }

    #[test]
    fn hybrid_resolves_signs_across_sides() {
        // Mixed inserted/deleted survivors through the solver: the sign
        // system must place each key on the right side.
        let mut checked = 0;
        for seed in 0..300u64 {
            let mut t = Iblt::new(30, 3, seed);
            let ins: Vec<u64> = (0..12u64).map(|k| k * 104_729 + seed).collect();
            let del: Vec<u64> = (0..12u64).map(|k| k * 130_363 + seed + 1).collect();
            for &k in &ins {
                t.insert(k);
            }
            for &k in &del {
                t.delete(k);
            }
            let peel = t.clone().decode_with(DecodeMode::PeelOnly);
            let hybrid = t.decode_with(DecodeMode::Hybrid);
            if peel.complete || !hybrid.complete {
                continue;
            }
            checked += 1;
            let mut got_ins = hybrid.inserted.clone();
            got_ins.sort_unstable();
            let mut want_ins = ins.clone();
            want_ins.sort_unstable();
            assert_eq!(got_ins, want_ins, "seed {seed}");
            let mut got_del = hybrid.deleted.clone();
            got_del.sort_unstable();
            let mut want_del = del.clone();
            want_del.sort_unstable();
            assert_eq!(got_del, want_del, "seed {seed}");
        }
        assert!(checked > 0, "no solver-rescued mixed-sign decode found");
    }

    #[test]
    fn peel_only_matches_hybrid_when_peel_succeeds() {
        for seed in 0..50u64 {
            let mut t = Iblt::new(60, 3, seed);
            for k in 0..20u64 {
                t.insert(k.wrapping_mul(0x9E37_79B9) ^ seed);
            }
            let peel = t.clone().decode_with(DecodeMode::PeelOnly);
            if !peel.complete {
                continue;
            }
            let hybrid = t.decode_with(DecodeMode::Hybrid);
            assert_eq!(peel.inserted, hybrid.inserted);
            assert_eq!(peel.deleted, hybrid.deleted);
            assert_eq!(hybrid.solved, 0, "solver must not run when peel finishes");
        }
    }

    #[test]
    fn wire_bits_scales_with_cells() {
        let t = Iblt::new(30, 3, 7);
        let t2 = Iblt::new(60, 3, 7);
        assert!(t2.wire_bits(100) > t.wire_bits(100));
    }

    #[test]
    fn delta_since_decodes_only_the_churn() {
        // A resident table over a large set, snapshotted, then churned:
        // the delta decodes exactly the churn, with signs, regardless of
        // how many keys the base set holds.
        let mut table = Iblt::new(60, 3, 11);
        for k in 0..10_000u64 {
            table.insert(k);
        }
        let snap = table.snapshot();
        table.insert(20_001);
        table.insert(20_002);
        table.delete(7); // present in the base set
        let d = table.delta_since(&snap).decode();
        assert!(d.complete);
        let mut ins = d.inserted.clone();
        ins.sort_unstable();
        assert_eq!(ins, vec![20_001, 20_002]);
        assert_eq!(d.deleted, vec![7]);
        // The snapshot itself is untouched by the churn.
        assert!(snap.delta_since(&snap).decode().complete);
    }

    #[test]
    fn snapshot_of_equal_sets_is_cell_identical() {
        // Two parties building tables over the same set with shared
        // parameters produce byte-identical tables — the invariant that
        // lets continuous rounds subtract their snapshots implicitly.
        let mut a = Iblt::new(50, 3, 21);
        let mut b = Iblt::new(50, 3, 21);
        for k in [5u64, 900, 31, 77, 12] {
            a.insert(k);
        }
        for k in [12u64, 77, 31, 900, 5] {
            b.insert(k);
        }
        assert_eq!(a.to_bytes(100), b.to_bytes(100));
    }

    #[test]
    #[should_panic]
    fn subtract_layout_mismatch_panics() {
        let mut a = Iblt::new(30, 3, 1);
        let b = Iblt::new(60, 3, 1);
        a.subtract(&b);
    }
}
