//! The standard XOR-based IBLT (keys only).
//!
//! Used for exact set reconciliation (§2.2: "Bob constructs an O(d) cell
//! IBLT by adding each of his set elements to it… Alice … deletes each of
//! her set elements from it") and by the quadtree baseline. Cells hold a
//! count, a key XOR and a checksum XOR; a cell is *pure* when its count is
//! ±1 and its checksum matches the checksum of its key XOR. Peeling pure
//! cells recovers the symmetric difference.

use crate::layout::CellLayout;
use rsr_hash::checksum::Checksum;

/// One XOR cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct XorCell {
    count: i64,
    key_xor: u64,
    check_xor: u64,
}

impl XorCell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_xor == 0 && self.check_xor == 0
    }
}

/// A standard IBLT holding 64-bit keys.
///
/// The table is *signed*: [`Iblt::insert`] adds a key, [`Iblt::delete`]
/// removes one (possibly never inserted, driving the count negative). In
/// reconciliation the inserting party's survivors decode with count `+1`
/// and the deleting party's with `−1`.
#[derive(Clone, Debug)]
pub struct Iblt {
    layout: CellLayout,
    checksum: Checksum,
    cells: Vec<XorCell>,
}

/// Result of decoding an IBLT.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IbltDecode {
    /// Keys recovered with positive sign (inserted-side survivors).
    pub inserted: Vec<u64>,
    /// Keys recovered with negative sign (deleted-side survivors).
    pub deleted: Vec<u64>,
    /// True if the table fully emptied (every key recovered).
    pub complete: bool,
}

impl Iblt {
    /// Creates an empty table with at least `min_cells` cells and `q` hash
    /// functions, seeded by `seed`.
    pub fn new(min_cells: usize, q: usize, seed: u64) -> Self {
        let layout = CellLayout::new(min_cells, q, seed);
        Iblt {
            layout,
            checksum: Checksum::new(seed ^ 0x1B17),
            cells: vec![XorCell::default(); layout.num_cells()],
        }
    }

    /// Number of cells `m`.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions `q`.
    pub fn q(&self) -> usize {
        self.layout.q()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Deletes a key (count may go negative).
    pub fn delete(&mut self, key: u64) {
        self.update(key, -1);
    }

    fn update(&mut self, key: u64, sign: i64) {
        let check = self.checksum.of(key);
        for i in 0..self.layout.q() {
            let c = &mut self.cells[self.layout.cell_in_partition(key, i)];
            c.count += sign;
            c.key_xor ^= key;
            c.check_xor ^= check;
        }
    }

    /// Subtracts another table cell-wise (`self − other`). Both tables must
    /// share layout parameters and seed. After `a.subtract(&b)`, keys in
    /// both tables cancel; `a`'s survivors decode positive, `b`'s negative.
    pub fn subtract(&mut self, other: &Iblt) {
        assert_eq!(self.layout, other.layout, "layout mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.count -= b.count;
            a.key_xor ^= b.key_xor;
            a.check_xor ^= b.check_xor;
        }
    }

    /// A cell-identical copy of the table, retained as the baseline a
    /// later delta is measured against. Continuous reconciliation keeps
    /// one table resident per party, snapshots it at every settle, and
    /// ships only [`Iblt::delta_since`] the snapshot each round.
    pub fn snapshot(&self) -> Iblt {
        self.clone()
    }

    /// The table containing exactly the keys whose membership changed
    /// since `snapshot` was taken: `self − snapshot`, cell-wise. Because
    /// the table size tracks the *churn bound* rather than the set size,
    /// this costs O(m) cell operations however large the underlying set
    /// has grown — the heart of the O(churn) incremental round. Keys
    /// inserted since the snapshot decode positive, keys deleted decode
    /// negative. Panics if the layouts differ (like [`Iblt::subtract`]).
    pub fn delta_since(&self, snapshot: &Iblt) -> Iblt {
        let mut delta = self.clone();
        delta.subtract(snapshot);
        delta
    }

    fn is_pure(&self, idx: usize) -> bool {
        let c = &self.cells[idx];
        (c.count == 1 || c.count == -1) && self.checksum.of(c.key_xor) == c.check_xor
    }

    /// Decodes the table by peeling. The table is consumed back to the
    /// state it would have after removing every recovered key; on complete
    /// success it is empty.
    pub fn decode(mut self) -> IbltDecode {
        let mut result = IbltDecode::default();
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.cells.len()).filter(|&i| self.is_pure(i)).collect();
        while let Some(idx) = queue.pop_front() {
            if !self.is_pure(idx) {
                continue; // stale entry
            }
            let key = self.cells[idx].key_xor;
            let sign = self.cells[idx].count;
            if sign > 0 {
                result.inserted.push(key);
            } else {
                result.deleted.push(key);
            }
            self.update(key, -sign);
            for i in 0..self.layout.q() {
                let cell = self.layout.cell_in_partition(key, i);
                if self.is_pure(cell) {
                    queue.push_back(cell);
                }
            }
        }
        result.complete = self.cells.iter().all(XorCell::is_empty);
        result
    }

    /// Wire size in bits of the serialized table, with counts sized for
    /// at most `n_bound` items. Exactly matches [`Iblt::to_bytes`] (which
    /// pads only to the final byte).
    pub fn wire_bits(&self, n_bound: usize) -> u64 {
        self.cells.len() as u64 * crate::wire::CellWidths::xor(n_bound).per_cell(0)
    }

    /// Writes the cell contents into an in-progress [`BitWriter`](crate::bits::BitWriter), so the
    /// table can ride inside a larger protocol message. Adds exactly
    /// [`Iblt::wire_bits`] bits.
    pub fn write_to(&self, w: &mut crate::bits::BitWriter, n_bound: usize) {
        let widths = crate::wire::CellWidths::xor(n_bound);
        let before = w.bit_len();
        for cell in &self.cells {
            crate::wire::put_i64(w, cell.count, widths.count);
            w.write(cell.key_xor, widths.key);
            w.write(cell.check_xor, widths.check);
        }
        debug_assert_eq!(w.bit_len() - before, self.wire_bits(n_bound));
    }

    /// Reads a table previously written with [`Iblt::write_to`] from an
    /// in-progress [`BitReader`](crate::bits::BitReader), given the shared construction parameters.
    /// Returns `None` on buffer exhaustion or a count exceeding `n_bound`.
    pub fn read_from(
        r: &mut crate::bits::BitReader<'_>,
        min_cells: usize,
        q: usize,
        seed: u64,
        n_bound: usize,
    ) -> Option<Iblt> {
        let mut table = Iblt::new(min_cells, q, seed);
        let widths = crate::wire::CellWidths::xor(n_bound);
        for cell in &mut table.cells {
            let count = crate::wire::get_i64(r, widths.count)?;
            if count.unsigned_abs() > n_bound as u64 {
                return None;
            }
            cell.count = count;
            cell.key_xor = r.read(widths.key)?;
            cell.check_xor = r.read(widths.check)?;
        }
        Some(table)
    }

    /// Serializes the cell contents. The construction parameters (cell
    /// count, `q`, seed) are shared via public coins and not resent; the
    /// peer rebuilds with [`Iblt::from_bytes`] and the same parameters.
    pub fn to_bytes(&self, n_bound: usize) -> Vec<u8> {
        let mut w = crate::bits::BitWriter::new();
        self.write_to(&mut w, n_bound);
        w.finish()
    }

    /// Reconstructs a table from [`Iblt::to_bytes`] output plus the
    /// shared construction parameters. Returns `None` if the buffer is
    /// too short or a count exceeds `n_bound`.
    pub fn from_bytes(
        bytes: &[u8],
        min_cells: usize,
        q: usize,
        seed: u64,
        n_bound: usize,
    ) -> Option<Iblt> {
        let mut r = crate::bits::BitReader::new(bytes);
        Iblt::read_from(&mut r, min_cells, q, seed, n_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_recovers_inserted_keys() {
        let mut t = Iblt::new(40, 3, 1);
        let keys = [3u64, 17, 99, 12345];
        for &k in &keys {
            t.insert(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let mut got = d.inserted.clone();
        got.sort_unstable();
        assert_eq!(got, {
            let mut v = keys.to_vec();
            v.sort_unstable();
            v
        });
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut t = Iblt::new(40, 3, 2);
        t.insert(5);
        t.insert(6);
        t.delete(5);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.inserted, vec![6]);
        assert!(d.deleted.is_empty());
    }

    #[test]
    fn deleted_side_keys_surface_with_negative_sign() {
        let mut t = Iblt::new(40, 3, 3);
        t.delete(1000);
        t.delete(2000);
        let d = t.decode();
        assert!(d.complete);
        assert!(d.inserted.is_empty());
        let mut got = d.deleted.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1000, 2000]);
    }

    #[test]
    fn set_reconciliation_roundtrip() {
        // Bob inserts his set, Alice deletes hers; survivors are the
        // symmetric difference with signs telling whose side each is on.
        let bob: Vec<u64> = (0..1000).collect();
        let alice: Vec<u64> = (5..1005).collect();
        let mut t = Iblt::new(80, 3, 4);
        for &k in &bob {
            t.insert(k);
        }
        for &k in &alice {
            t.delete(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let mut bob_only = d.inserted.clone();
        bob_only.sort_unstable();
        assert_eq!(bob_only, (0..5).collect::<Vec<u64>>());
        let mut alice_only = d.deleted.clone();
        alice_only.sort_unstable();
        assert_eq!(alice_only, (1000..1005).collect::<Vec<u64>>());
    }

    #[test]
    fn subtract_equals_insert_delete() {
        let mut a = Iblt::new(150, 3, 9);
        let mut b = Iblt::new(150, 3, 9);
        for k in 0..50u64 {
            a.insert(k);
        }
        for k in 25..75u64 {
            b.insert(k);
        }
        a.subtract(&b);
        let d = a.decode();
        assert!(d.complete);
        assert_eq!(d.inserted.len(), 25); // 0..25 only in a
        assert_eq!(d.deleted.len(), 25); // 50..75 only in b
    }

    #[test]
    fn overloaded_table_reports_incomplete() {
        let mut t = Iblt::new(12, 3, 5);
        for k in 0..200u64 {
            t.insert(k);
        }
        let d = t.decode();
        assert!(!d.complete);
    }

    #[test]
    fn duplicate_insertions_block_pure_cells_but_do_not_lie() {
        // Two copies of the same key produce count-2 cells; the standard
        // IBLT cannot peel them, and must not fabricate keys.
        let mut t = Iblt::new(40, 3, 6);
        t.insert(77);
        t.insert(77);
        let d = t.decode();
        assert!(!d.complete);
        assert!(d.inserted.is_empty() && d.deleted.is_empty());
    }

    #[test]
    fn wire_bits_scales_with_cells() {
        let t = Iblt::new(30, 3, 7);
        let t2 = Iblt::new(60, 3, 7);
        assert!(t2.wire_bits(100) > t.wire_bits(100));
    }

    #[test]
    fn delta_since_decodes_only_the_churn() {
        // A resident table over a large set, snapshotted, then churned:
        // the delta decodes exactly the churn, with signs, regardless of
        // how many keys the base set holds.
        let mut table = Iblt::new(60, 3, 11);
        for k in 0..10_000u64 {
            table.insert(k);
        }
        let snap = table.snapshot();
        table.insert(20_001);
        table.insert(20_002);
        table.delete(7); // present in the base set
        let d = table.delta_since(&snap).decode();
        assert!(d.complete);
        let mut ins = d.inserted.clone();
        ins.sort_unstable();
        assert_eq!(ins, vec![20_001, 20_002]);
        assert_eq!(d.deleted, vec![7]);
        // The snapshot itself is untouched by the churn.
        assert!(snap.delta_since(&snap).decode().complete);
    }

    #[test]
    fn snapshot_of_equal_sets_is_cell_identical() {
        // Two parties building tables over the same set with shared
        // parameters produce byte-identical tables — the invariant that
        // lets continuous rounds subtract their snapshots implicitly.
        let mut a = Iblt::new(50, 3, 21);
        let mut b = Iblt::new(50, 3, 21);
        for k in [5u64, 900, 31, 77, 12] {
            a.insert(k);
        }
        for k in [12u64, 77, 31, 900, 5] {
            b.insert(k);
        }
        assert_eq!(a.to_bytes(100), b.to_bytes(100));
    }

    #[test]
    #[should_panic]
    fn subtract_layout_mismatch_panics() {
        let mut a = Iblt::new(30, 3, 1);
        let b = Iblt::new(60, 3, 1);
        a.subtract(&b);
    }
}
