//! Byte-level serialization of IBLTs and RIBLTs — the shared wire codec.
//!
//! Protocol messages are not hypothetical: a table serializes into a
//! buffer of exactly `ceil(wire_bits/8)` bytes and deserializes back,
//! given the shared construction parameters (which travel as public
//! coins, not on the wire). One width table ([`CellWidths`]) feeds both
//! the serializer and the `wire_bits` accounting, so the transcript
//! numbers are the true message sizes by construction.
//!
//! The field codecs here ([`put_i64`], [`put_i128`], [`put_len`] and their
//! readers) are public: every protocol message in the workspace — RIBLT
//! levels, sets-of-sets rounds, far-point lists — is encoded through this
//! module plus [`crate::bits`], and transcripts record the sizes *measured*
//! from those encoders. Tables compose into larger messages via
//! [`crate::Iblt::write_to`] / [`crate::Riblt::write_to`].

use crate::bits::{unzigzag, unzigzag128, zigzag, zigzag128, BitReader, BitWriter};

/// Number of bits needed to store values `0..=x`.
#[inline]
pub fn bits_for(x: u128) -> u32 {
    128 - x.max(1).leading_zeros()
}

/// Per-field bit widths for a table sized for at most `n_bound` items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellWidths {
    /// Zigzagged count (∈ [−n, n] → [0, 2n]).
    pub count: u32,
    /// Key aggregate: 64 for XOR; `65 + bits(n)` for signed sums.
    pub key: u32,
    /// Checksum aggregate: 64 for XOR; `63 + bits(n)` for signed sums.
    pub check: u32,
    /// One value coordinate (RIBLT only): zigzagged sum in [−nΔ, nΔ].
    pub value: u32,
}

impl CellWidths {
    /// Widths for the standard XOR IBLT.
    pub fn xor(n_bound: usize) -> Self {
        CellWidths {
            count: bits_for(2 * n_bound.max(1) as u128),
            key: 64,
            check: 64,
            value: 0,
        }
    }

    /// Widths for the Robust IBLT over `[Δ]^d` values.
    pub fn sum(n_bound: usize, delta: i64) -> Self {
        let n = n_bound.max(1) as u128;
        CellWidths {
            count: bits_for(2 * n),
            key: 65 + bits_for(n),
            check: 63 + bits_for(n),
            value: bits_for(2 * n * delta.max(1) as u128),
        }
    }

    /// Total bits per cell for a value dimension `d`.
    pub fn per_cell(&self, dim: usize) -> u64 {
        u64::from(self.count)
            + u64::from(self.key)
            + u64::from(self.check)
            + dim as u64 * u64::from(self.value)
    }
}

/// Serializes one signed 64-bit field.
pub fn put_i64(w: &mut BitWriter, v: i64, width: u32) {
    w.write(zigzag(v), width);
}

/// Deserializes one signed 64-bit field.
pub fn get_i64(r: &mut BitReader<'_>, width: u32) -> Option<i64> {
    r.read(width).map(unzigzag)
}

/// Serializes one signed 128-bit field.
pub fn put_i128(w: &mut BitWriter, v: i128, width: u32) {
    w.write128(zigzag128(v), width);
}

/// Deserializes one signed 128-bit field.
pub fn get_i128(r: &mut BitReader<'_>, width: u32) -> Option<i128> {
    r.read128(width).map(unzigzag128)
}

/// Serializes an unsigned length/count field as 32 bits. Panics if the
/// value exceeds `u32::MAX` (no protocol message carries that many items).
pub fn put_len(w: &mut BitWriter, len: usize) {
    assert!(len <= u32::MAX as usize, "length {len} exceeds u32 range");
    w.write(len as u64, 32);
}

/// Deserializes a 32-bit length/count field.
pub fn get_len(r: &mut BitReader<'_>) -> Option<usize> {
    r.read(32).map(|v| v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_grow_with_bounds() {
        assert!(CellWidths::xor(1000).count > CellWidths::xor(10).count);
        let a = CellWidths::sum(100, 100);
        let b = CellWidths::sum(100, 1_000_000);
        assert!(b.value > a.value);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn per_cell_accounts_dimension() {
        let w = CellWidths::sum(100, 1000);
        assert_eq!(w.per_cell(4) - w.per_cell(2), 2 * u64::from(w.value));
    }

    #[test]
    fn signed_field_roundtrip() {
        let widths = CellWidths::sum(50, 1000);
        let mut w = BitWriter::new();
        put_i64(&mut w, -37, widths.count);
        put_i128(&mut w, -(50i128 << 64), widths.key);
        put_i128(&mut w, 49 * (1i128 << 62), widths.check);
        put_i64(&mut w, -49_999, widths.value);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(get_i64(&mut r, widths.count), Some(-37));
        assert_eq!(get_i128(&mut r, widths.key), Some(-(50i128 << 64)));
        assert_eq!(get_i128(&mut r, widths.check), Some(49 * (1i128 << 62)));
        assert_eq!(get_i64(&mut r, widths.value), Some(-49_999));
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
