//! Partitioned key→cells mapping shared by the IBLT and RIBLT.
//!
//! Each key hashes to `q` *distinct* cells. Following §2.2 ("we assume
//! these cells are distinct; for example, one can use a partitioned hash
//! table, with each hash function mapping to m/q cells"), the `m` cells are
//! split into `q` equal partitions and hash function `i` selects one cell
//! inside partition `i`.

use rsr_hash::mix::mix64;

/// The cell layout of a table: `q` partitions of `m/q` cells each, with a
/// per-table seed so independently created tables use independent hashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellLayout {
    q: usize,
    cells_per_partition: usize,
    seed: u64,
}

impl CellLayout {
    /// Creates a layout with *at least* `min_cells` cells in `q ≥ 2`
    /// partitions (the cell count is rounded up to a multiple of `q`).
    pub fn new(min_cells: usize, q: usize, seed: u64) -> Self {
        assert!(q >= 2, "need q ≥ 2 hash functions, got {q}");
        assert!(min_cells >= q, "need at least q cells");
        let cells_per_partition = min_cells.div_ceil(q);
        CellLayout {
            q,
            cells_per_partition,
            seed,
        }
    }

    /// Number of hash functions `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total number of cells `m` (a multiple of `q`).
    pub fn num_cells(&self) -> usize {
        self.q * self.cells_per_partition
    }

    /// Table seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `q` distinct cell indices of `key`, in partition order.
    pub fn cells_of(&self, key: u64) -> Vec<usize> {
        (0..self.q)
            .map(|i| self.cell_in_partition(key, i))
            .collect()
    }

    /// The cell of `key` inside partition `i`.
    #[inline]
    pub fn cell_in_partition(&self, key: u64, i: usize) -> usize {
        debug_assert!(i < self.q);
        let h = mix64(key ^ mix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        i * self.cells_per_partition + (h % self.cells_per_partition as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_distinct_and_in_partition() {
        let layout = CellLayout::new(30, 3, 99);
        for key in 0..500u64 {
            let cells = layout.cells_of(key);
            assert_eq!(cells.len(), 3);
            let per = layout.num_cells() / 3;
            for (i, &c) in cells.iter().enumerate() {
                assert!(c >= i * per && c < (i + 1) * per, "cell {c} partition {i}");
            }
            // Distinctness follows from partitioning.
            let set: std::collections::HashSet<_> = cells.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn rounds_cells_up_to_multiple_of_q() {
        let layout = CellLayout::new(10, 3, 0);
        assert_eq!(layout.num_cells(), 12);
        assert_eq!(layout.q(), 3);
    }

    #[test]
    fn seed_changes_mapping() {
        let a = CellLayout::new(30, 3, 1);
        let b = CellLayout::new(30, 3, 2);
        assert!((0..100u64).any(|k| a.cells_of(k) != b.cells_of(k)));
    }

    #[test]
    fn deterministic() {
        let layout = CellLayout::new(64, 4, 7);
        assert_eq!(layout.cells_of(42), layout.cells_of(42));
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let layout = CellLayout::new(100, 4, 3);
        let per = layout.num_cells() / 4;
        let mut counts = vec![0u32; per];
        for key in 0..(per as u64 * 100) {
            counts[layout.cell_in_partition(key, 0) % per] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 2 * min, "very uneven spread: {min}..{max}");
    }

    #[test]
    #[should_panic]
    fn q_one_rejected() {
        CellLayout::new(10, 1, 0);
    }
}
