//! Partitioned key→cells mapping shared by the IBLT and RIBLT.
//!
//! Each key hashes to `q` *distinct* cells. Following §2.2 ("we assume
//! these cells are distinct; for example, one can use a partitioned hash
//! table, with each hash function mapping to m/q cells"), the `m` cells are
//! split into `q` equal partitions and hash function `i` selects one cell
//! inside partition `i`.
//!
//! **Single-pass hashing.** One `mix64` invocation per key
//! ([`CellLayout::key_hash`]) feeds *both* the cell checksum
//! ([`CellLayout::check_of_hash`] takes the low [`CHECKSUM_BITS`] bits)
//! and all `q` cell indices ([`CellLayout::cell_of_hash`] derives each
//! partition slot from the same base hash). Insert/subtract/peel touch
//! every key through this path, so an update costs `q + 1` mixes instead
//! of the `2q + 2` the split checksum-plus-per-partition scheme cost.
//! Because the checksum and the cell indices share one base hash, they
//! cannot desynchronize: any consumer re-deriving purity or edge
//! structure (the decoder, [`crate::hypergraph::Hypergraph::from_layout`])
//! goes through this module.
//!
//! **Struct-of-arrays cells.** [`CellStore`] keeps counts / key XORs /
//! checksum XORs as three separate slices so the cell-wise subtract and
//! the purity scan are straight-line loops over primitive arrays the
//! compiler can vectorize, instead of strided walks over an
//! array-of-structs.

use rsr_hash::checksum::CHECKSUM_BITS;
use rsr_hash::mix::mix64;

/// The cell layout of a table: `q` partitions of `m/q` cells each, with a
/// per-table seed so independently created tables use independent hashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellLayout {
    q: usize,
    cells_per_partition: usize,
    seed: u64,
    /// `mix64(seed ⊕ tag)`, precomputed so [`CellLayout::key_hash`] is a
    /// single mix. Derived from `seed`, so derived equality stays exact.
    seed_mix: u64,
}

impl CellLayout {
    /// Creates a layout with *at least* `min_cells` cells in `q ≥ 2`
    /// partitions (the cell count is rounded up to a multiple of `q`).
    pub fn new(min_cells: usize, q: usize, seed: u64) -> Self {
        assert!(q >= 2, "need q ≥ 2 hash functions, got {q}");
        assert!(min_cells >= q, "need at least q cells");
        let cells_per_partition = min_cells.div_ceil(q);
        CellLayout {
            q,
            cells_per_partition,
            seed,
            seed_mix: mix64(seed ^ 0xA24B_AED4_963E_E407),
        }
    }

    /// Number of hash functions `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total number of cells `m` (a multiple of `q`).
    pub fn num_cells(&self) -> usize {
        self.q * self.cells_per_partition
    }

    /// Table seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The single per-key hash: one `mix64` whose output feeds both the
    /// checksum and every cell index.
    #[inline]
    pub fn key_hash(&self, key: u64) -> u64 {
        mix64(key ^ self.seed_mix)
    }

    /// The cell checksum carried by a base hash: its low
    /// [`CHECKSUM_BITS`] bits (62, so RIBLT sums of up to `2^64`
    /// checksums still fit an `i128`).
    #[inline]
    pub fn check_of_hash(base: u64) -> u64 {
        base & ((1u64 << CHECKSUM_BITS) - 1)
    }

    /// Checksum of a key (`check_of_hash ∘ key_hash`).
    #[inline]
    pub fn check_of(&self, key: u64) -> u64 {
        Self::check_of_hash(self.key_hash(key))
    }

    /// The cell a base hash selects inside partition `i`.
    #[inline]
    pub fn cell_of_hash(&self, base: u64, i: usize) -> usize {
        debug_assert!(i < self.q);
        let h = mix64(base ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        i * self.cells_per_partition + (h % self.cells_per_partition as u64) as usize
    }

    /// The cell of `key` inside partition `i`.
    #[inline]
    pub fn cell_in_partition(&self, key: u64, i: usize) -> usize {
        self.cell_of_hash(self.key_hash(key), i)
    }

    /// The `q` distinct cell indices of `key`, in partition order.
    pub fn cells_of(&self, key: u64) -> Vec<usize> {
        let base = self.key_hash(key);
        (0..self.q).map(|i| self.cell_of_hash(base, i)).collect()
    }

    /// The shared purity predicate: an XOR cell decodes one key exactly
    /// when its count is `±1` and the checksum of its key XOR matches its
    /// checksum XOR under this layout's hash. Returns the sign
    /// (`count`). The IBLT peeler and the hypergraph degree-1 analysis
    /// both resolve purity through this one helper, so a change to the
    /// hash path cannot leave them disagreeing.
    #[inline]
    pub fn pure_cell_sign(&self, count: i64, key_xor: u64, check_xor: u64) -> Option<i64> {
        if (count == 1 || count == -1) && self.check_of(key_xor) == check_xor {
            Some(count)
        } else {
            None
        }
    }
}

/// Struct-of-arrays XOR-cell storage: `counts`, `key_xors`, `check_xors`
/// as three parallel slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellStore {
    counts: Vec<i64>,
    key_xors: Vec<u64>,
    check_xors: Vec<u64>,
}

impl CellStore {
    /// `n` empty cells.
    pub fn new(n: usize) -> Self {
        CellStore {
            counts: vec![0; n],
            key_xors: vec![0; n],
            check_xors: vec![0; n],
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The count slice.
    pub fn counts(&self) -> &[i64] {
        &self.counts
    }

    /// The key-XOR slice.
    pub fn key_xors(&self) -> &[u64] {
        &self.key_xors
    }

    /// The checksum-XOR slice.
    pub fn check_xors(&self) -> &[u64] {
        &self.check_xors
    }

    /// The count of cell `idx`.
    #[inline]
    pub fn count(&self, idx: usize) -> i64 {
        self.counts[idx]
    }

    /// The key XOR of cell `idx`.
    #[inline]
    pub fn key_xor(&self, idx: usize) -> u64 {
        self.key_xors[idx]
    }

    /// The checksum XOR of cell `idx`.
    #[inline]
    pub fn check_xor(&self, idx: usize) -> u64 {
        self.check_xors[idx]
    }

    /// Applies one signed key update to cell `idx`.
    #[inline]
    pub fn apply(&mut self, idx: usize, sign: i64, key: u64, check: u64) {
        self.counts[idx] += sign;
        self.key_xors[idx] ^= key;
        self.check_xors[idx] ^= check;
    }

    /// Overwrites cell `idx` (deserialization).
    pub fn set(&mut self, idx: usize, count: i64, key_xor: u64, check_xor: u64) {
        self.counts[idx] = count;
        self.key_xors[idx] = key_xor;
        self.check_xors[idx] = check_xor;
    }

    /// Cell-wise subtraction (`self − other`), one tight loop per field
    /// so each vectorizes independently.
    pub fn subtract(&mut self, other: &CellStore) {
        assert_eq!(self.len(), other.len(), "cell count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
        for (a, b) in self.key_xors.iter_mut().zip(&other.key_xors) {
            *a ^= b;
        }
        for (a, b) in self.check_xors.iter_mut().zip(&other.check_xors) {
            *a ^= b;
        }
    }

    /// True if cell `idx` carries nothing.
    #[inline]
    pub fn cell_is_empty(&self, idx: usize) -> bool {
        self.counts[idx] == 0 && self.key_xors[idx] == 0 && self.check_xors[idx] == 0
    }

    /// True if every cell is empty — three branch-free OR-reductions.
    pub fn all_empty(&self) -> bool {
        self.counts.iter().fold(0i64, |a, &c| a | c) == 0
            && self.key_xors.iter().fold(0u64, |a, &k| a | k) == 0
            && self.check_xors.iter().fold(0u64, |a, &c| a | c) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_distinct_and_in_partition() {
        let layout = CellLayout::new(30, 3, 99);
        for key in 0..500u64 {
            let cells = layout.cells_of(key);
            assert_eq!(cells.len(), 3);
            let per = layout.num_cells() / 3;
            for (i, &c) in cells.iter().enumerate() {
                assert!(c >= i * per && c < (i + 1) * per, "cell {c} partition {i}");
            }
            // Distinctness follows from partitioning.
            let set: std::collections::HashSet<_> = cells.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn rounds_cells_up_to_multiple_of_q() {
        let layout = CellLayout::new(10, 3, 0);
        assert_eq!(layout.num_cells(), 12);
        assert_eq!(layout.q(), 3);
    }

    #[test]
    fn seed_changes_mapping() {
        let a = CellLayout::new(30, 3, 1);
        let b = CellLayout::new(30, 3, 2);
        assert!((0..100u64).any(|k| a.cells_of(k) != b.cells_of(k)));
    }

    #[test]
    fn deterministic() {
        let layout = CellLayout::new(64, 4, 7);
        assert_eq!(layout.cells_of(42), layout.cells_of(42));
    }

    #[test]
    fn single_pass_paths_agree() {
        // The convenience accessors and the base-hash forms are the same
        // function — the invariant that lets update loops hash once.
        let layout = CellLayout::new(60, 4, 23);
        for key in 0..200u64 {
            let base = layout.key_hash(key);
            assert_eq!(layout.check_of(key), CellLayout::check_of_hash(base));
            for i in 0..4 {
                assert_eq!(
                    layout.cell_in_partition(key, i),
                    layout.cell_of_hash(base, i)
                );
            }
        }
    }

    #[test]
    fn checksum_fits_width() {
        let layout = CellLayout::new(30, 3, 9);
        for key in 0..1000u64 {
            assert!(layout.check_of(key) < (1u64 << CHECKSUM_BITS));
        }
    }

    #[test]
    fn pure_cell_sign_requires_matching_checksum() {
        let layout = CellLayout::new(30, 3, 13);
        let key = 12345u64;
        let check = layout.check_of(key);
        assert_eq!(layout.pure_cell_sign(1, key, check), Some(1));
        assert_eq!(layout.pure_cell_sign(-1, key, check), Some(-1));
        assert_eq!(layout.pure_cell_sign(2, key, check), None);
        assert_eq!(layout.pure_cell_sign(1, key, check ^ 1), None);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let layout = CellLayout::new(100, 4, 3);
        let per = layout.num_cells() / 4;
        let mut counts = vec![0u32; per];
        for key in 0..(per as u64 * 100) {
            counts[layout.cell_in_partition(key, 0) % per] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 2 * min, "very uneven spread: {min}..{max}");
    }

    #[test]
    fn cell_store_apply_and_subtract_cancel() {
        let mut a = CellStore::new(8);
        let mut b = CellStore::new(8);
        a.apply(3, 1, 0xABCD, 0x1234);
        b.apply(3, 1, 0xABCD, 0x1234);
        b.apply(5, -1, 7, 9);
        a.subtract(&b);
        assert!(a.cell_is_empty(3));
        assert!(!a.cell_is_empty(5));
        assert_eq!(a.count(5), 1);
        assert_eq!(a.key_xor(5), 7);
        assert!(!a.all_empty());
        a.apply(5, -1, 7, 9);
        assert!(a.all_empty());
    }

    #[test]
    #[should_panic]
    fn q_one_rejected() {
        CellLayout::new(10, 1, 0);
    }
}
