//! Bit-level packing for table serialization.
//!
//! The transcript accountant charges protocols per-field bit widths
//! (`wire_bits`); this module makes those numbers *real*: tables
//! serialize to byte buffers whose length is exactly the accounted bits
//! rounded up, via an MSB-first bit writer/reader and zigzag coding for
//! signed fields.

/// Maps a signed value to an unsigned one with small absolute values
/// staying small (zigzag coding).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// 128-bit zigzag (RIBLT key/checksum sums).
#[inline]
pub fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Inverse of [`zigzag128`].
#[inline]
pub fn unzigzag128(u: u128) -> i128 {
    ((u >> 1) as i128) ^ -((u & 1) as i128)
}

/// MSB-first bit writer.
#[derive(Default, Debug)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 = byte boundary).
    partial: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes the low `width` bits of `value` (width ≤ 64). Panics if the
    /// value does not fit.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64);
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit {width} bits"
        );
        self.write128(value as u128, width);
    }

    /// Writes the low `width` bits of a 128-bit value (width ≤ 128).
    pub fn write128(&mut self, value: u128, width: u32) {
        assert!(width <= 128);
        assert!(
            width == 128 || value < (1u128 << width),
            "value does not fit {width} bits"
        );
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= bit << (7 - self.partial);
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8
            - if self.partial == 0 {
                0
            } else {
                (8 - self.partial) as u64
            }
    }

    /// Finishes, returning the byte buffer (zero-padded to a byte).
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a buffer.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits (≤ 64) as an unsigned value. Returns `None` on
    /// buffer exhaustion.
    pub fn read(&mut self, width: u32) -> Option<u64> {
        self.read128(width).map(|v| v as u64)
    }

    /// Reads `width` bits (≤ 128).
    pub fn read128(&mut self, width: u32) -> Option<u128> {
        assert!(width <= 128);
        if self.pos + width as u64 > self.bytes.len() as u64 * 8 {
            return None;
        }
        let mut out: u128 = 0;
        for _ in 0..width {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u128;
            self.pos += 1;
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        for v in [0i128, -1, i128::MAX, i128::MIN, -(1i128 << 100)] {
            assert_eq!(unzigzag128(zigzag128(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn write_read_roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xDEADBEEF, 32);
        w.write(1, 1);
        w.write128(0x1234_5678_9ABC_DEF0_1111, 80);
        let bits = w.bit_len();
        assert_eq!(bits, 3 + 32 + 1 + 80);
        let buf = w.finish();
        assert_eq!(buf.len() as u64, bits.div_ceil(8));
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(32), Some(0xDEADBEEF));
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.read128(80), Some(0x1234_5678_9ABC_DEF0_1111));
        assert_eq!(r.bit_pos(), bits);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.write(7, 3);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(r.read(3).is_some());
        // Padding bits remain but a 64-bit read must fail.
        assert!(r.read(64).is_none());
    }

    #[test]
    #[should_panic]
    fn oversize_value_rejected() {
        BitWriter::new().write(8, 3);
    }
}
