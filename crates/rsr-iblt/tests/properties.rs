//! Property-based tests for IBLT / RIBLT invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::{Iblt, Riblt};
use rsr_metric::Point;
use std::collections::BTreeSet;

proptest! {
    /// Below threshold, decoding an IBLT is a multiset isomorphism: every
    /// inserted key comes back exactly once, on the right side.
    #[test]
    fn iblt_decode_recovers_symmetric_difference(
        seed in 0u64..1000,
        a_keys in prop::collection::btree_set(0u64..10_000, 0..30),
        b_keys in prop::collection::btree_set(0u64..10_000, 0..30),
    ) {
        let mut t = Iblt::new(6 * 30, 3, seed);
        for &k in &a_keys {
            t.insert(k);
        }
        for &k in &b_keys {
            t.delete(k);
        }
        let d = t.decode();
        prop_assume!(d.complete); // loads here are far below threshold; decode failure is ~impossible
        let got_a: BTreeSet<u64> = d.inserted.iter().copied().collect();
        let got_b: BTreeSet<u64> = d.deleted.iter().copied().collect();
        let want_a: BTreeSet<u64> = a_keys.difference(&b_keys).copied().collect();
        let want_b: BTreeSet<u64> = b_keys.difference(&a_keys).copied().collect();
        prop_assert_eq!(got_a, want_a);
        prop_assert_eq!(got_b, want_b);
        prop_assert_eq!(d.inserted.len() + d.deleted.len(),
            a_keys.symmetric_difference(&b_keys).count());
    }

    /// RIBLT with distinct keys and exact values decodes losslessly —
    /// "if Z_A and Z_B also have no duplicate keys, then the RIBLT peeling
    /// procedure would be identical to the standard IBLT peeling procedure
    /// and we would recover Z_A and Z_B with no error" (§3).
    #[test]
    fn riblt_noiseless_decode_is_exact(
        seed in 0u64..1000,
        keys in prop::collection::btree_set(0u64..100_000, 1..20),
        coords in prop::collection::vec(0i64..500, 20 * 3),
    ) {
        let config = RibltConfig {
            min_cells: 6 * 20,
            q: 3,
            dim: 3,
            delta: 500,
            seed,
        };
        let mut t = Riblt::new(config);
        let mut want = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let v = Point::new(coords[3 * i..3 * i + 3].to_vec());
            t.insert(k, &v);
            want.push((k, v));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let d = t.decode(&mut rng);
        prop_assume!(d.complete);
        prop_assert_eq!(d.contaminated, 0);
        let mut got: Vec<_> = d.inserted.iter().map(|x| (x.key, x.value.clone())).collect();
        got.sort();
        prop_assert_eq!(got, want);
        prop_assert!(d.deleted.is_empty());
    }

    /// Insert-then-delete of identical pairs always cancels to an empty,
    /// residual-free table, regardless of interleaving.
    #[test]
    fn riblt_exact_cancellation(
        seed in 0u64..1000,
        items in prop::collection::vec((0u64..1000, 0i64..100), 1..40),
    ) {
        let config = RibltConfig {
            min_cells: 30,
            q: 3,
            dim: 1,
            delta: 100,
            seed,
        };
        let mut t = Riblt::new(config);
        for &(k, v) in &items {
            t.insert(k, &Point::new(vec![v]));
        }
        for &(k, v) in items.iter().rev() {
            t.delete(k, &Point::new(vec![v]));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let d = t.decode(&mut rng);
        prop_assert!(d.complete);
        prop_assert!(d.inserted.is_empty() && d.deleted.is_empty());
        prop_assert_eq!(d.value_residual_cells, 0);
    }

    /// Near-pairs (same key, values off by bounded noise) always cancel
    /// their keys; the table stays decodable and the extracted survivors
    /// are exactly the unpaired items.
    #[test]
    fn riblt_near_pairs_cancel_keys(
        seed in 0u64..500,
        pairs in prop::collection::vec((0u64..1000, 0i64..90, 0i64..10), 1..25),
        survivor_key in 2000u64..3000,
        survivor_val in 0i64..100,
    ) {
        let config = RibltConfig {
            min_cells: 60,
            q: 3,
            dim: 1,
            delta: 100,
            seed,
        };
        let mut t = Riblt::new(config);
        for &(k, v, noise) in &pairs {
            t.insert(k, &Point::new(vec![v]));
            t.delete(k, &Point::new(vec![v + noise]));
        }
        t.insert(survivor_key, &Point::new(vec![survivor_val]));
        let mut rng = StdRng::seed_from_u64(2);
        let d = t.decode(&mut rng);
        prop_assert!(d.complete, "keys must all cancel or peel");
        prop_assert_eq!(d.inserted.len(), 1);
        prop_assert!(d.deleted.is_empty());
        prop_assert_eq!(d.inserted[0].key, survivor_key);
        // The survivor's value may have absorbed error, but stays in grid.
        let got = d.inserted[0].value.coord(0);
        prop_assert!((0..100).contains(&got));
    }

    /// The wire size is monotone in the cell count.
    #[test]
    fn iblt_wire_monotone(cells_a in 9usize..60, extra in 3usize..60) {
        let a = Iblt::new(cells_a, 3, 0);
        let b = Iblt::new(cells_a + extra, 3, 0);
        prop_assert!(b.wire_bits(100) >= a.wire_bits(100));
    }
}

proptest! {
    /// A random symmetric difference *within the decoding threshold* of an
    /// Algorithm-1-sized table round-trips exactly: the table is sized via
    /// `RibltConfig::for_pairs(k, …)` for up to `4k` surviving pairs, we
    /// load at most `k` per side on top of a cancelled shared bulk, and
    /// decoding must recover exactly the planted difference.
    #[test]
    fn riblt_difference_within_threshold_roundtrips(
        seed in 0u64..400,
        k_total in 1usize..12,
        shared in 0usize..60,
        a_keys in prop::collection::btree_set(0u64..50_000, 0..12),
        b_keys in prop::collection::btree_set(50_000u64..100_000, 0..12),
    ) {
        let k = k_total.max(a_keys.len()).max(b_keys.len());
        let config = RibltConfig::for_pairs(k, 3, 1, 1000, seed);
        let mut t = Riblt::new(config);
        for i in 0..shared as u64 {
            let v = Point::new(vec![(i % 1000) as i64]);
            t.insert(200_000 + i, &v);
            t.delete(200_000 + i, &v);
        }
        // Values derived from keys: distinct keys per side, exact values.
        let value_of = |key: u64| Point::new(vec![(key.wrapping_mul(31) % 1000) as i64]);
        let mut want_a: Vec<(u64, Point)> = a_keys.iter().map(|&key| (key, value_of(key))).collect();
        let mut want_b: Vec<(u64, Point)> = b_keys.iter().map(|&key| (key, value_of(key))).collect();
        for (key, v) in &want_a {
            t.insert(*key, v);
        }
        for (key, v) in &want_b {
            t.delete(*key, v);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let d = t.decode(&mut rng);
        prop_assert!(d.complete, "within-threshold difference must decode");
        prop_assert_eq!(d.contaminated, 0);
        let mut got_a: Vec<_> = d.inserted.iter().map(|x| (x.key, x.value.clone())).collect();
        let mut got_b: Vec<_> = d.deleted.iter().map(|x| (x.key, x.value.clone())).collect();
        got_a.sort();
        got_b.sort();
        want_a.sort();
        want_b.sort();
        prop_assert_eq!(got_a, want_a);
        prop_assert_eq!(got_b, want_b);
    }

    /// An *oversized* difference fails cleanly: decode reports incomplete
    /// (or, rarely, still succeeds) but never fabricates — every recovered
    /// key is a planted key with its exact planted value, never a blend.
    #[test]
    fn riblt_oversized_difference_fails_cleanly(
        seed in 0u64..400,
        overload_factor in 3usize..10,
    ) {
        let k = 4;
        let config = RibltConfig::for_pairs(k, 3, 1, 1000, seed);
        let n = overload_factor * config.min_cells;
        let mut t = Riblt::new(config);
        let planted: std::collections::BTreeMap<u64, i64> =
            (0..n as u64).map(|i| (i * 7 + 1, (i as i64 * 13) % 1000)).collect();
        for (&key, &v) in &planted {
            t.insert(key, &Point::new(vec![v]));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let d = t.decode(&mut rng);
        // Massive overload: the 2-core is nonempty w.h.p. — and whatever
        // *was* peeled must be genuine.
        prop_assert!(!d.complete, "decode must report failure when overloaded");
        prop_assert!(d.deleted.is_empty());
        for pair in &d.inserted {
            let want = planted.get(&pair.key);
            prop_assert!(want.is_some(), "fabricated key {}", pair.key);
            prop_assert_eq!(pair.value.coord(0), *want.unwrap(), "blended value for key {}", pair.key);
        }
    }

    /// The XOR IBLT under the same overload: no fabricated keys either.
    #[test]
    fn iblt_oversized_never_fabricates(seed in 0u64..400, extra in 2usize..8) {
        let cells = 24;
        let mut t = Iblt::new(cells, 3, seed);
        let planted: BTreeSet<u64> = (0..(extra * cells) as u64).map(|i| i * 11 + 3).collect();
        for &key in &planted {
            t.insert(key);
        }
        let d = t.decode();
        prop_assert!(!d.complete);
        for key in d.inserted.iter().chain(&d.deleted) {
            prop_assert!(planted.contains(key), "fabricated key {key}");
        }
    }

    /// Serialization round-trips: the reconstructed IBLT decodes to the
    /// same result, and the buffer length is exactly the accounted bits
    /// rounded up to bytes.
    #[test]
    fn iblt_serialization_roundtrip(
        seed in 0u64..500,
        keys in prop::collection::btree_set(0u64..100_000, 0..25),
    ) {
        let n_bound = 32;
        let mut t = Iblt::new(96, 3, seed);
        for &k in &keys {
            t.insert(k);
        }
        let bytes = t.to_bytes(n_bound);
        prop_assert_eq!(bytes.len() as u64, t.wire_bits(n_bound).div_ceil(8));
        let back = Iblt::from_bytes(&bytes, 96, 3, seed, n_bound).expect("valid buffer");
        let d1 = t.decode();
        let d2 = back.decode();
        prop_assert_eq!(d1.complete, d2.complete);
        let mut a = d1.inserted;
        let mut b = d2.inserted;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// RIBLT serialization round-trips bit-exactly.
    #[test]
    fn riblt_serialization_roundtrip(
        seed in 0u64..500,
        items in prop::collection::vec((0u64..10_000, 0i64..400, 0i64..400), 0..15),
    ) {
        let config = RibltConfig {
            min_cells: 90,
            q: 3,
            dim: 2,
            delta: 400,
            seed,
        };
        let n_bound = 16;
        let mut t = Riblt::new(config);
        for &(k, x, y) in &items {
            t.insert(k, &Point::new(vec![x, y]));
        }
        let bytes = t.to_bytes(n_bound);
        prop_assert_eq!(bytes.len() as u64, t.wire_bits(n_bound).div_ceil(8));
        let back = Riblt::from_bytes(&bytes, config, n_bound).expect("valid buffer");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let d1 = t.decode(&mut rng);
        let d2 = back.decode(&mut rng2);
        prop_assert_eq!(d1.complete, d2.complete);
        let mut a: Vec<_> = d1.inserted.iter().map(|p| (p.key, p.value.clone())).collect();
        let mut b: Vec<_> = d2.inserted.iter().map(|p| (p.key, p.value.clone())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Truncated buffers are rejected, never mis-decoded.
    #[test]
    fn truncated_buffers_rejected(seed in 0u64..200, cut in 1usize..20) {
        let mut t = Iblt::new(48, 3, seed);
        for k in 0..10u64 {
            t.insert(k);
        }
        let bytes = t.to_bytes(16);
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        prop_assert!(Iblt::from_bytes(truncated, 48, 3, seed, 16).is_none());
    }
}
