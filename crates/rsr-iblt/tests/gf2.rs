//! Property suite for the GF(2) kernel behind the hybrid decoder
//! ([`rsr_iblt::gf2`]), checked against brute-force enumeration over
//! every assignment (instances are capped at 16 unknowns so 2^cols is
//! enumerable).
//!
//! The properties pin exactly the contract the hybrid decode path in
//! `rsr_iblt::iblt` relies on:
//!
//! * `solve` agrees with exhaustive search: it returns `Unique` iff
//!   exactly one assignment satisfies the system, `Inconsistent` iff
//!   none does, and `Underdetermined` (with the true rank) otherwise —
//!   a singular or inconsistent system is **reported**, never
//!   mis-decoded into some arbitrary assignment.
//! * A `Unique` solution satisfies every equation.
//! * `rref` preserves the row space and reports the true rank.
//! * `SpanIter` visits every nonzero span element exactly once.

use proptest::prelude::*;
use rsr_iblt::gf2::{solve, Gf2Matrix, Gf2Solution, SpanIter};

/// A random system `A·x = b` with `cols ≤ 16` unknowns, returned as
/// coefficient bitmasks (bit `c` of `masks[r]` is `A[r][c]`) plus the
/// right-hand side.
fn build(masks: &[u32], cols: usize) -> Gf2Matrix {
    let mut a = Gf2Matrix::new(cols);
    for &m in masks {
        a.push_row_words(&[u64::from(m)]);
    }
    a
}

/// Number of assignments satisfying the system, and the last satisfying
/// assignment seen (meaningful when the count is 1).
fn brute_force(masks: &[u32], b: &[bool], cols: usize) -> (usize, u32) {
    let mut solutions = 0usize;
    let mut witness = 0u32;
    for x in 0..(1u32 << cols) {
        if masks
            .iter()
            .zip(b)
            .all(|(&m, &rhs)| ((m & x).count_ones() & 1 == 1) == rhs)
        {
            solutions += 1;
            witness = x;
        }
    }
    (solutions, witness)
}

proptest! {
    /// `solve` against exhaustive enumeration: the outcome class matches
    /// the true solution count, `Unique` returns the one true witness,
    /// and `Underdetermined` carries the rank that explains the count
    /// (`2^(cols − rank)` solutions when consistent).
    #[test]
    fn solve_matches_brute_force(
        cols in 1usize..=16,
        rows in prop::collection::vec(0u32..=u32::MAX, 1..20),
        rhs_bits in 0u32..=u32::MAX,
    ) {
        let masks: Vec<u32> = rows
            .iter()
            .map(|r| r & ((1u32 << cols) - 1))
            .collect();
        let b: Vec<bool> = (0..masks.len()).map(|i| rhs_bits >> i & 1 == 1).collect();
        let a = build(&masks, cols);
        let (count, witness) = brute_force(&masks, &b, cols);
        match solve(&a, &b) {
            Gf2Solution::Unique(x) => {
                prop_assert_eq!(count, 1, "claimed unique, brute force found {}", count);
                let packed: u32 = x
                    .iter()
                    .enumerate()
                    .map(|(i, &bit)| u32::from(bit) << i)
                    .sum();
                prop_assert_eq!(packed, witness);
            }
            Gf2Solution::Inconsistent => {
                prop_assert_eq!(count, 0, "claimed inconsistent, brute force found {}", count);
            }
            Gf2Solution::Underdetermined { rank } => {
                prop_assert!(count != 1, "claimed underdetermined, solution is unique");
                prop_assert!(rank < cols);
                if count > 0 {
                    prop_assert_eq!(count, 1usize << (cols - rank));
                }
                // Even when inconsistent AND rank-deficient the solver may
                // only report the rank deficiency it saw first; but a
                // count of zero must never be reported as solvable with
                // full rank (that would be `Unique`, covered above).
            }
        }
    }

    /// Any `Unique` answer satisfies every equation of the system it was
    /// solved from — checked directly, independent of the brute force.
    #[test]
    fn unique_solutions_satisfy_every_equation(
        cols in 1usize..=16,
        rows in prop::collection::vec(0u32..=u32::MAX, 1..24),
        rhs_bits in 0u32..=u32::MAX,
    ) {
        let masks: Vec<u32> = rows.iter().map(|r| r & ((1u32 << cols) - 1)).collect();
        let b: Vec<bool> = (0..masks.len()).map(|i| rhs_bits >> i & 1 == 1).collect();
        let a = build(&masks, cols);
        if let Gf2Solution::Unique(x) = solve(&a, &b) {
            let packed: u32 = x.iter().enumerate().map(|(i, &bit)| u32::from(bit) << i).sum();
            for (r, (&m, &rhs)) in masks.iter().zip(&b).enumerate() {
                prop_assert_eq!(
                    (m & packed).count_ones() & 1 == 1,
                    rhs,
                    "equation {} violated",
                    r
                );
            }
        }
    }

    /// `rref` preserves the row space: appending the original rows to the
    /// reduced basis does not change the rank, in either direction.
    #[test]
    fn rref_preserves_row_space_and_rank(
        cols in 1usize..=16,
        rows in prop::collection::vec(0u32..=u32::MAX, 1..20),
    ) {
        let masks: Vec<u32> = rows.iter().map(|r| r & ((1u32 << cols) - 1)).collect();
        let original = build(&masks, cols);
        let mut reduced = original.clone();
        let pivots = reduced.rref();
        prop_assert_eq!(pivots.len(), original.rank());
        prop_assert_eq!(reduced.nonzero_rows().len(), pivots.len());
        // Basis ∪ original has the same rank as either alone ⇒ equal spans.
        let mut both = Gf2Matrix::new(cols);
        for row in reduced.nonzero_rows() {
            both.push_row_words(&row);
        }
        for &m in &masks {
            both.push_row_words(&[u64::from(m)]);
        }
        prop_assert_eq!(both.rank(), pivots.len());
        // Pivot columns are canonical: each pivot column is set in exactly
        // one basis row.
        for (i, &col) in pivots.iter().enumerate() {
            for r in 0..reduced.num_rows() {
                prop_assert_eq!(reduced.bit(r, col), r == i);
            }
        }
    }

    /// `SpanIter` over an independent basis enumerates exactly the
    /// nonzero subset-XORs, each once.
    #[test]
    fn span_iter_enumerates_the_exact_span(
        cols in 1usize..=16,
        rows in prop::collection::vec(0u32..=u32::MAX, 1..8),
    ) {
        let masks: Vec<u32> = rows.iter().map(|r| r & ((1u32 << cols) - 1)).collect();
        let mut m = build(&masks, cols);
        m.rref();
        let basis = m.nonzero_rows();
        let rank = basis.len();
        // Brute-force subset XOR of the independent basis.
        let mut want: Vec<u64> = (1u64..1 << rank)
            .map(|s| {
                (0..rank)
                    .filter(|i| s >> i & 1 == 1)
                    .fold(0u64, |acc, i| acc ^ basis[i][0])
            })
            .collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(want.len(), (1usize << rank) - 1, "basis not independent");
        let mut got: Vec<u64> = SpanIter::new(basis).map(|r| r[0]).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
