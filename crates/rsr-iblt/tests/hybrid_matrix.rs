//! Matrix tests pinning the [`DecodeMode::Hybrid`] contract against
//! [`DecodeMode::PeelOnly`]:
//!
//! 1. Wherever pure peeling succeeds, hybrid is a **no-op extension**:
//!    it returns the bit-identical key sets and reports zero solved
//!    keys — the GF(2) stage only ever runs on what peeling left.
//! 2. Hybrid strictly dominates: on a pinned, nonempty list of seeds
//!    the pure peel stalls on a 2-core and hybrid decodes the table
//!    completely, recovering exactly the inserted keys.
//! 3. The wire format is decode-mode independent: the decode mode is a
//!    property of the *decoding call*, not the table, so serialized
//!    bytes agree bit-for-bit no matter which mode either side will
//!    use, and a round-tripped table decodes identically to the
//!    original in both modes.

use proptest::prelude::*;
use rsr_iblt::{DecodeMode, Iblt};
use std::collections::BTreeSet;

/// Seeds where `stuck_table` stalls under pure peeling but the hybrid
/// GF(2) stage completes the decode. Pinned (not searched at test time)
/// so a regression in the solver cannot hide behind re-searching; found
/// by sweeping seeds 0..4000, where 26 keys in a 30-cell q = 3 table
/// leave a small 2-core in roughly one seed in six.
const RESCUED_SEEDS: &[u64] = &[6, 8, 9, 16, 25, 34, 39, 45, 48, 56, 60, 70];

/// 26 keys hashed into a 30-cell q = 3 table: past the peel threshold
/// often enough to stall, small enough that the stuck core stays within
/// `MAX_SOLVE_RANK`.
fn stuck_table(seed: u64) -> (Iblt, BTreeSet<u64>) {
    let mut t = Iblt::new(30, 3, seed);
    let keys: BTreeSet<u64> = (0..26u64).map(|k| k * 7919 + seed).collect();
    for &k in &keys {
        t.insert(k);
    }
    (t, keys)
}

#[test]
fn hybrid_rescues_every_pinned_seed() {
    assert!(!RESCUED_SEEDS.is_empty());
    for &seed in RESCUED_SEEDS {
        let (table, keys) = stuck_table(seed);
        let peel = table.clone().decode_with(DecodeMode::PeelOnly);
        assert!(
            !peel.complete,
            "seed {seed}: peel-only now succeeds; the pinned list is stale"
        );
        let hybrid = table.decode_with(DecodeMode::Hybrid);
        assert!(hybrid.complete, "seed {seed}: hybrid failed to rescue");
        assert!(hybrid.solved > 0, "seed {seed}: rescue without solved keys");
        let got: BTreeSet<u64> = hybrid.inserted.iter().copied().collect();
        assert_eq!(got, keys, "seed {seed}: wrong key set");
        assert_eq!(hybrid.inserted.len(), keys.len(), "seed {seed}: duplicates");
        assert!(hybrid.deleted.is_empty(), "seed {seed}: phantom deletions");
    }
}

#[test]
fn serialized_bytes_are_decode_mode_independent() {
    // The mode never touches the table state, so the bytes a party puts
    // on the wire cannot depend on how anyone plans to decode; pin that
    // by round-tripping and decoding the copy in both modes.
    let n_bound = 1 << 10;
    for &seed in RESCUED_SEEDS {
        let (table, keys) = stuck_table(seed);
        let bytes = table.to_bytes(n_bound);
        let rebuilt = Iblt::from_bytes(&bytes, 30, 3, seed, n_bound).expect("round-trips");
        assert_eq!(
            rebuilt.to_bytes(n_bound),
            bytes,
            "seed {seed}: round-trip changed the wire bytes"
        );
        let peel = rebuilt.clone().decode_with(DecodeMode::PeelOnly);
        assert!(!peel.complete, "seed {seed}: modes diverge over the wire");
        let hybrid = rebuilt.decode_with(DecodeMode::Hybrid);
        assert!(
            hybrid.complete,
            "seed {seed}: hybrid failed after round-trip"
        );
        let got: BTreeSet<u64> = hybrid.inserted.iter().copied().collect();
        assert_eq!(got, keys, "seed {seed}: wrong key set after round-trip");
    }
}

proptest! {
    /// Wherever pure peeling succeeds, hybrid returns the bit-identical
    /// answer — same keys, same sides, same order — and touches nothing
    /// with the solver (`solved == 0`, no residual rank).
    #[test]
    fn peel_success_implies_identical_hybrid_decode(
        seed in 0u64..500,
        a_keys in prop::collection::btree_set(0u64..100_000, 0..40),
        b_keys in prop::collection::btree_set(0u64..100_000, 0..40),
    ) {
        let mut t = Iblt::new(120, 3, seed);
        for &k in &a_keys {
            t.insert(k);
        }
        for &k in &b_keys {
            t.delete(k);
        }
        let peel = t.clone().decode_with(DecodeMode::PeelOnly);
        prop_assume!(peel.complete);
        let hybrid = t.decode_with(DecodeMode::Hybrid);
        prop_assert!(hybrid.complete);
        prop_assert_eq!(&hybrid.inserted, &peel.inserted);
        prop_assert_eq!(&hybrid.deleted, &peel.deleted);
        prop_assert_eq!(hybrid.solved, 0, "solver ran on a peelable table");
        prop_assert_eq!(hybrid.residual_rank, 0);
        prop_assert_eq!(hybrid.peeled, peel.peeled);
    }

    /// Mixed-sign stuck cores: hybrid recovers insertions and deletions
    /// on the correct sides whenever it claims completion, regardless of
    /// which side each stuck key came from.
    #[test]
    fn hybrid_completion_is_always_correct(
        seed in 0u64..400,
        ins in prop::collection::btree_set(0u64..50_000, 0..18),
        del in prop::collection::btree_set(50_000u64..100_000, 0..18),
    ) {
        let mut t = Iblt::new(30, 3, seed);
        for &k in &ins {
            t.insert(k);
        }
        for &k in &del {
            t.delete(k);
        }
        let d = t.decode_with(DecodeMode::Hybrid);
        if d.complete {
            let got_ins: BTreeSet<u64> = d.inserted.iter().copied().collect();
            let got_del: BTreeSet<u64> = d.deleted.iter().copied().collect();
            prop_assert_eq!(got_ins, ins);
            prop_assert_eq!(got_del, del);
        }
    }
}
