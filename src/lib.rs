//! # robust-set-recon
//!
//! A Rust implementation of **"Robust Set Reconciliation via Locality
//! Sensitive Hashing"** (Michael Mitzenmacher & Tom Morgan, PODS 2019).
//!
//! Two parties, Alice and Bob, hold sets of points in a discretized metric
//! space. Classic set reconciliation synchronizes *identical* elements with
//! communication proportional to the symmetric difference; *robust* set
//! reconciliation treats *sufficiently close* points as equal — the right
//! notion when the data are noisy sensor readings, lossily compressed
//! features, or rounded floating-point measurements.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`metric`] — discretized metric spaces `([Δ]^d, ℓ_p)` / Hamming.
//! * [`hash`] — pairwise-independent hashing and the paper's LSH / multi-
//!   scale LSH families.
//! * [`iblt`] — Invertible Bloom Lookup Tables, including the paper's
//!   *Robust* IBLT with sum cells and breadth-first peeling.
//! * [`emd`] — exact earth mover's distance (Hungarian) and `EMD_k`.
//! * [`setsofsets`] — the sets-of-sets reconciliation substrate.
//! * [`quadtree`] — the Chen et al. (SIGMOD'14) baseline protocol.
//! * [`core`] — the paper's protocols: the EMD-model protocol
//!   (Algorithm 1), the Gap-Guarantee protocol (Theorem 4.2) and its
//!   low-dimension variant (Theorem 4.5), plus exact set reconciliation
//!   and the one-round lower-bound reduction (Theorem 4.6).
//! * [`net`] — the TCP transport behind the session layer's `Channel`
//!   trait, plus the multi-session reconciliation server and client.
//! * [`obs`] — process-wide metrics registry, span timers, and the
//!   post-mortem event ring the reactor/executor layers record into.
//! * [`workloads`] — synthetic workload generators for the experiments,
//!   and the replayable session-trace format.
//!
//! ## Quickstart
//!
//! ```
//! use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
//! use robust_set_recon::metric::MetricSpace;
//! use robust_set_recon::workloads::planted_emd;
//!
//! // A 64-dimensional Hamming space; Alice and Bob share 200 points up to
//! // 1 bit of noise, and k = 4 points differ arbitrarily.
//! let space = MetricSpace::hamming(64);
//! let wl = planted_emd(space, 200, 4, 1, 0xC0FFEE);
//!
//! let cfg = EmdProtocolConfig::for_space(&space, wl.alice.len(), 4);
//! let proto = EmdProtocol::new(space, cfg, 0xC0FFEE);
//! let msg = proto.alice_encode(&wl.alice);
//! let out = proto.bob_decode(&msg, &wl.bob).expect("decodable");
//! assert_eq!(out.reconciled.len(), wl.bob.len());
//! ```

pub use rsr_core as core;
pub use rsr_emd as emd;
pub use rsr_hash as hash;
pub use rsr_iblt as iblt;
pub use rsr_metric as metric;
pub use rsr_net as net;
pub use rsr_obs as obs;
pub use rsr_quadtree as quadtree;
pub use rsr_setsofsets as setsofsets;
pub use rsr_workloads as workloads;
